//! Shared cell execution: turns one [`CellPlan`] of a [`ScenarioSpec`]
//! into result rows (and, for callers that need them, the optimized
//! schedules themselves).
//!
//! Factored out of the campaign engine so the batch CLI
//! (`dagchkpt-bench`) and the serving daemon (`dagchkpt-serve`) execute
//! requests through literally the same code path — a served answer is
//! byte-identical to the batch CSV because both are produced by
//! [`run_cell_full`] + [`cell_csv_rows`] with the same per-cell seeds.

use crate::campaign::OutputFormat;
use crate::runner::{best_per_ckpt_strategy, Row};
use crate::scenario::{
    AdmissionPolicy, ArrivalSpec, CellPlan, FailureCell, ObjectiveSpec, OptimizerSpec,
    ScenarioError, ScenarioSpec, SimulatorSpec, StorageSelect, StrategyCell,
};
use dagchkpt_core::{
    evaluator, exact, linearize, optimize_checkpoints_quantile, optimize_joint,
    optimize_joint_storage, run_heuristic, run_heuristic_with, select_storage, storage_scales,
    LinearizationStrategy, ReplicatedEvaluator, Schedule, SelectionSpec, StorageStrategy,
    SweepPolicy, Workflow,
};
use dagchkpt_failure::{
    daly, ExponentialInjector, FaultInjector, FaultModel, StorageHierarchy, TraceInjector,
    WeibullInjector,
};
use dagchkpt_sim::{
    run_nonblocking_trials_with, run_replicated_sets_trials_with, run_replicated_trials_with,
    run_tenant_trials_with, run_trials_with, simulate_replicated_nonblocking,
    simulate_replicated_nonblocking_sets, trial_metric_tail_stats, McObjective, NonBlockingConfig,
    TenantConfig, TenantJob, TenantPolicy, TrialSpec,
};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// One output row: a (cell, strategy, simulator) outcome.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Cell index in the scenario's expansion.
    pub cell: usize,
    /// Workflow display name.
    pub workflow: String,
    /// Task count.
    pub n: usize,
    /// Proxy failure rate (the exponential λ the schedule was optimized
    /// under).
    pub lambda: f64,
    /// Failure-model label.
    pub failure: String,
    /// Weibull shape (`NaN` for other models).
    pub shape: f64,
    /// Cost-rule label.
    pub rule: String,
    /// Platform label (empty without a `platforms` axis).
    pub platform: String,
    /// Replication label (empty without a `replications` axis).
    pub replication: String,
    /// Strategy name.
    pub strategy: String,
    /// Simulator label.
    pub simulator: String,
    /// Analytic expected makespan under the proxy model.
    pub expected: f64,
    /// Failure-free, checkpoint-free time `Σ w_i`.
    pub tinf: f64,
    /// `expected / tinf`.
    pub ratio: f64,
    /// Winning checkpoint budget for swept strategies.
    pub best_n: Option<usize>,
    /// Monte-Carlo mean makespan (`NaN` for the analytic simulator).
    pub mc_mean: f64,
    /// Standard error of the Monte-Carlo mean.
    pub mc_sem: f64,
    /// `(mc_mean − expected) / mc_sem`.
    pub z: f64,
    /// Monte-Carlo median makespan estimate (`NaN` for the analytic
    /// simulator), from the trial runs' streaming tail sketch.
    pub mc_p50: f64,
    /// Monte-Carlo 95th-percentile makespan estimate (`NaN` analytic).
    pub mc_p95: f64,
    /// Monte-Carlo 99th-percentile makespan estimate (`NaN` analytic).
    pub mc_p99: f64,
    /// Storage-tier label when the spec has a `storage` axis: the winning
    /// tier's name for a uniform assignment, `per-task` for a mixed one;
    /// empty without the axis (and then absent from JSON mirrors, so
    /// pre-existing `json_file` outputs stay byte-identical).
    #[serde(skip_serializing_if = "String::is_empty")]
    pub storage: String,
}

/// A strategy's optimized schedule plus its analytic value. `replica_sets`
/// is `Some` only when the joint optimizer re-selected per-task replica
/// sets (they then replace the cell's static degree assignment everywhere
/// downstream: the analytic column and both Monte-Carlo engines).
struct StrategyOutcome {
    name: String,
    schedule: Schedule,
    expected: f64,
    best_n: Option<usize>,
    replica_sets: Option<Vec<Vec<usize>>>,
    /// Per-task storage tiers, `Some` only under a `storage` axis; the
    /// Monte-Carlo engines then simulate the tier-priced workflow copy
    /// and `expected` already carries the exact storage-aware value.
    tiers: Option<Vec<usize>>,
}

/// Joint coordinate-descent rounds per heuristic (sweep + replica
/// selection per round; the descent stops early at a fixed point).
const JOINT_ROUNDS: usize = 4;

/// XOR salt on the cell seed for the quantile objective's own trial
/// stream, so the optimizer's Monte-Carlo draws are decorrelated from the
/// row simulators' (which use the unsalted cell seed).
const TAIL_OBJECTIVE_SALT: u64 = 0x9D3C_55F2_71E4_A0B7;

#[allow(clippy::too_many_arguments)]
fn run_strategy(
    wf: &Workflow,
    model: FaultModel,
    strat: StrategyCell,
    policy: SweepPolicy,
    optimizer: OptimizerSpec,
    objective: ObjectiveSpec,
    seed: u64,
    hetero: Option<&(dagchkpt_failure::HeteroPlatform, Vec<usize>)>,
) -> Result<StrategyOutcome, ScenarioError> {
    match strat {
        StrategyCell::Heuristic(h) => {
            if let Some((q, trials)) = objective.quantile_target() {
                // Quantile objectives sweep each heuristic's budget
                // against a seeded Monte-Carlo quantile estimate under
                // the cell's homogeneous exponential proxy (validation
                // pins `optimizer == Proxy` for them). The `expected`
                // column keeps its meaning — the analytic proxy mean of
                // the chosen schedule — so arms optimizing different
                // objectives stay comparable at the mean.
                let mc = McObjective::homogeneous(
                    wf,
                    model,
                    TrialSpec::new(trials, seed ^ TAIL_OBJECTIVE_SALT),
                );
                let order = linearize(wf, h.lin);
                let r = optimize_checkpoints_quantile(wf, &mc, &order, h.ckpt, policy, q);
                let expected = evaluator::expected_makespan(wf, model, &r.schedule);
                return Ok(StrategyOutcome {
                    name: h.name(),
                    schedule: r.schedule,
                    expected,
                    best_n: r.best_n,
                    replica_sets: None,
                    tiers: None,
                });
            }
            let r = match (optimizer, hetero) {
                // The proxy optimizer — and any optimizer on a cell the
                // degenerate collapse routed to the homogeneous path —
                // optimizes under the single-machine model, as ever.
                (OptimizerSpec::Proxy, _) | (_, None) => run_heuristic(wf, model, h, policy),
                (OptimizerSpec::ReplicationAware, Some((platform, degrees))) => {
                    let obj = ReplicatedEvaluator::from_degrees(wf, platform, degrees);
                    run_heuristic_with(wf, &obj, h, policy)
                }
                (OptimizerSpec::Joint, Some((platform, degrees))) => {
                    let order = linearize(wf, h.lin);
                    let j =
                        optimize_joint(wf, platform, &order, h.ckpt, policy, degrees, JOINT_ROUNDS);
                    return Ok(StrategyOutcome {
                        name: h.name(),
                        expected: j.expected_makespan,
                        best_n: j.best_n,
                        replica_sets: Some(j.replica_sets),
                        tiers: None,
                        schedule: j.schedule,
                    });
                }
            };
            Ok(StrategyOutcome {
                name: r.name,
                schedule: r.schedule,
                expected: r.expected_makespan,
                best_n: r.best_n,
                replica_sets: None,
                tiers: None,
            })
        }
        StrategyCell::ExactChain => {
            let (schedule, expected) = exact::chain::solve_chain(wf, model)
                .ok_or_else(|| ScenarioError::new("ExactChain: workflow is not a chain"))?;
            Ok(exact_outcome("ExactChain", schedule, expected))
        }
        StrategyCell::ExactFork => {
            let (schedule, expected) = exact::fork::solve_fork(wf, model)
                .ok_or_else(|| ScenarioError::new("ExactFork: workflow is not a fork"))?;
            Ok(exact_outcome("ExactFork", schedule, expected))
        }
        StrategyCell::ExactJoin => {
            let (schedule, expected) =
                exact::join::solve_join_uniform(wf, model).ok_or_else(|| {
                    ScenarioError::new(
                        "ExactJoin: workflow is not a join with uniform checkpoint costs",
                    )
                })?;
            Ok(exact_outcome("ExactJoin", schedule, expected))
        }
        StrategyCell::Young | StrategyCell::Daly => {
            let n = wf.n_tasks();
            let order = linearize(wf, LinearizationStrategy::DepthFirst);
            let mean_c = if n == 0 {
                0.0
            } else {
                wf.checkpoint_costs().iter().sum::<f64>() / n as f64
            };
            let budget = if model.lambda() <= 0.0 || mean_c <= 0.0 {
                0
            } else {
                let mtbf = 1.0 / model.lambda();
                let period = match strat {
                    StrategyCell::Young => daly::young_period(mean_c, mtbf),
                    _ => daly::daly_period(mean_c, mtbf),
                };
                if period > 0.0 {
                    (wf.total_work() / period).floor() as usize
                } else {
                    n
                }
            }
            .min(n);
            let set = dagchkpt_core::strategies::periodic_set(wf, &order, budget);
            let schedule = Schedule::new(wf, order, set)
                .map_err(|e| ScenarioError::new(format!("periodic schedule: {e}")))?;
            let expected = evaluator::expected_makespan(wf, model, &schedule);
            Ok(StrategyOutcome {
                name: strat.name(),
                schedule,
                expected,
                best_n: Some(budget),
                replica_sets: None,
                tiers: None,
            })
        }
    }
}

fn exact_outcome(name: &str, schedule: Schedule, expected: f64) -> StrategyOutcome {
    let best_n = Some(schedule.n_checkpoints());
    StrategyOutcome {
        name: name.to_string(),
        schedule,
        expected,
        best_n,
        replica_sets: None,
        tiers: None,
    }
}

/// Per-task replica-group sizes for storage-contention pricing: 1 for
/// every task on the homogeneous path, the joint optimizer's per-task
/// set sizes when it picked them, otherwise the cell's static degrees
/// clamped to the platform.
fn replica_counts(
    n: usize,
    hetero: Option<&(dagchkpt_failure::HeteroPlatform, Vec<usize>)>,
    sets: Option<&Vec<Vec<usize>>>,
) -> Vec<usize> {
    match (hetero, sets) {
        (None, _) => vec![1; n],
        (Some(_), Some(sets)) => sets.iter().map(|s| s.len().max(1)).collect(),
        (Some((platform, degrees)), None) => degrees
            .iter()
            .map(|&d| d.clamp(1, platform.n_procs()))
            .collect(),
    }
}

/// The tier-priced workflow copy every Monte-Carlo engine simulates:
/// checkpoint and recovery costs scaled by the one shared pricing
/// definition ([`storage_scales`]), so the trial engines and the
/// analytic column price storage identically.
fn storage_wf(
    wf: &Workflow,
    hierarchy: &StorageHierarchy,
    tiers: &[usize],
    counts: &[usize],
) -> Workflow {
    let (ckpt, rec) = storage_scales(hierarchy, tiers, counts);
    wf.with_scaled_costs(&ckpt, &rec)
}

/// CSV label for the storage column: the tier's name for a uniform
/// assignment, `per-task` for a mixed one, empty without the axis.
fn storage_label(
    storage: Option<&(StorageHierarchy, StorageSelect)>,
    tiers: Option<&Vec<usize>>,
) -> String {
    match (storage, tiers) {
        (Some((hierarchy, _)), Some(tiers)) => {
            let first = tiers.first().copied().unwrap_or(0);
            if tiers.iter().all(|&t| t == first) {
                hierarchy.tiers()[first].name.clone()
            } else {
                "per-task".to_string()
            }
        }
        _ => String::new(),
    }
}

/// Storage-aware strategy dispatch. Optimizes the strategy once per
/// candidate tier (uniform assignments, argmin by the exact tier-priced
/// expected makespan via [`f64::total_cmp`] — the first tier wins ties
/// and a `NaN` candidate can never displace a finite one), then refines
/// per task when the spec asks for it. Under the `joint` optimizer with
/// `per-task` selection, tier choice instead becomes the third axis of
/// the coordinate descent itself ([`optimize_joint_storage`]); under a
/// fixed tier the joint descent runs on a single-tier sub-hierarchy so
/// the tier stays pinned while budget and replica sets co-optimize.
///
/// The returned outcome always carries `tiers: Some(..)` and an
/// `expected` that is the exact storage-priced value — callers use it
/// directly instead of re-deriving a replicated expectation.
#[allow(clippy::too_many_arguments)]
fn run_strategy_storage(
    wf: &Workflow,
    model: FaultModel,
    strat: StrategyCell,
    policy: SweepPolicy,
    optimizer: OptimizerSpec,
    objective: ObjectiveSpec,
    seed: u64,
    hetero: Option<&(dagchkpt_failure::HeteroPlatform, Vec<usize>)>,
    hierarchy: &StorageHierarchy,
    select: &StorageSelect,
) -> Result<StrategyOutcome, ScenarioError> {
    let n = wf.n_tasks();
    let n_tiers = hierarchy.n_tiers();
    if optimizer == OptimizerSpec::Joint && *select == StorageSelect::PerTask {
        if let (StrategyCell::Heuristic(h), Some((platform, degrees))) = (strat, hetero) {
            let order = linearize(wf, h.lin);
            let j = optimize_joint_storage(
                wf,
                platform,
                &order,
                h.ckpt,
                policy,
                degrees,
                JOINT_ROUNDS,
                SelectionSpec::Prefixes,
                hierarchy,
                &vec![0; n],
            )
            .expect("the prefix family is infallible");
            return Ok(StrategyOutcome {
                name: h.name(),
                expected: j.expected_makespan,
                best_n: j.best_n,
                replica_sets: Some(j.replica_sets),
                tiers: j.tiers,
                schedule: j.schedule,
            });
        }
    }
    let candidates: Vec<usize> = match select {
        StorageSelect::Fixed { tier } => vec![hierarchy
            .index_of(tier)
            .expect("validation pinned the fixed tier to the hierarchy")],
        _ => (0..n_tiers).collect(),
    };
    let mut best: Option<(usize, StrategyOutcome)> = None;
    for &tier in &candidates {
        let tiers = vec![tier; n];
        let out = match (optimizer, hetero) {
            // Homogeneous (or degenerate-collapsed) cell: the scaled copy
            // prices the tier exactly, so the optimizer and the expected
            // value both run on it directly. The proxy optimizer on a
            // platform works the same way — it optimizes under the
            // single-machine view of the tier-priced copy — but its
            // expected column is then re-derived below as the exact
            // replicated, tier-priced value of that schedule.
            (_, None) | (OptimizerSpec::Proxy, Some(_)) => {
                let counts = replica_counts(n, hetero, None);
                let swf = storage_wf(wf, hierarchy, &tiers, &counts);
                let mut out =
                    run_strategy(&swf, model, strat, policy, optimizer, objective, seed, None)?;
                if let Some((platform, degrees)) = hetero {
                    let ev = ReplicatedEvaluator::from_degrees(wf, platform, degrees)
                        .with_storage(hierarchy, &tiers);
                    out.expected = ev.expected_makespan(&out.schedule);
                }
                out
            }
            // Validation pins non-proxy optimizers to heuristic
            // strategies, so the destructuring below cannot fail.
            (OptimizerSpec::ReplicationAware, Some((platform, degrees))) => {
                let StrategyCell::Heuristic(h) = strat else {
                    unreachable!("non-proxy optimizers are validated heuristic-only");
                };
                let ev = ReplicatedEvaluator::from_degrees(wf, platform, degrees)
                    .with_storage(hierarchy, &tiers);
                let r = run_heuristic_with(wf, &ev, h, policy);
                StrategyOutcome {
                    name: r.name,
                    schedule: r.schedule,
                    expected: r.expected_makespan,
                    best_n: r.best_n,
                    replica_sets: None,
                    tiers: None,
                }
            }
            (OptimizerSpec::Joint, Some((platform, degrees))) => {
                let StrategyCell::Heuristic(h) = strat else {
                    unreachable!("non-proxy optimizers are validated heuristic-only");
                };
                let order = linearize(wf, h.lin);
                // A single-tier sub-hierarchy pins the tier (the descent's
                // tier pass is a no-op on one tier) while budget and
                // replica sets still co-optimize — including the
                // contention term at the actual replica-group sizes.
                let sub = StorageHierarchy::new(vec![hierarchy.tiers()[tier].clone()])
                    .expect("a validated tier forms a valid singleton hierarchy");
                let j = optimize_joint_storage(
                    wf,
                    platform,
                    &order,
                    h.ckpt,
                    policy,
                    degrees,
                    JOINT_ROUNDS,
                    SelectionSpec::Prefixes,
                    &sub,
                    &vec![0; n],
                )
                .expect("the prefix family is infallible");
                StrategyOutcome {
                    name: h.name(),
                    expected: j.expected_makespan,
                    best_n: j.best_n,
                    replica_sets: Some(j.replica_sets),
                    tiers: None,
                    schedule: j.schedule,
                }
            }
        };
        let better = match &best {
            None => true,
            Some((_, b)) => out.expected.total_cmp(&b.expected).is_lt(),
        };
        if better {
            best = Some((tier, out));
        }
    }
    let (tier, mut out) = best.expect("a validated hierarchy has at least one tier");
    out.tiers = Some(vec![tier; n]);
    if *select == StorageSelect::PerTask {
        // Refine per task on the fixed winning schedule: coordinate
        // descent over tiers with the storage-aware evaluator, keeping
        // order, budget, and replica sets as chosen above. A degenerate
        // platform that collapsed to the homogeneous path is rebuilt as
        // the single reference machine, on which the replicated
        // evaluator reproduces the scalar model exactly.
        let reference;
        let (platform, degrees_own);
        match hetero {
            Some((p, d)) => {
                platform = p;
                degrees_own = d.clone();
            }
            None => {
                reference = dagchkpt_failure::HeteroPlatform::new(
                    vec![dagchkpt_failure::Processor::reference(model.lambda())],
                    0.0,
                )
                .expect("the reference machine is a valid platform");
                platform = &reference;
                degrees_own = vec![1; n];
            }
        }
        let mut ev = match &out.replica_sets {
            Some(sets) => ReplicatedEvaluator::from_sets(wf, platform, sets),
            None => ReplicatedEvaluator::from_degrees(wf, platform, &degrees_own),
        }
        .with_storage(hierarchy, &vec![tier; n]);
        let (tiers, e, _) = select_storage(
            &mut ev,
            &out.schedule,
            n_tiers,
            StorageStrategy::PerTask,
            JOINT_ROUNDS,
        );
        out.tiers = Some(tiers);
        out.expected = e;
    }
    Ok(out)
}

/// Fault source for one trial, matched to the cell's failure model.
enum CellInjector {
    Exp(ExponentialInjector),
    Weibull(WeibullInjector),
    Trace(TraceInjector),
}

impl FaultInjector for CellInjector {
    fn next_fault_after(&mut self, t: f64) -> f64 {
        match self {
            CellInjector::Exp(i) => i.next_fault_after(t),
            CellInjector::Weibull(i) => i.next_fault_after(t),
            CellInjector::Trace(i) => i.next_fault_after(t),
        }
    }
}

fn make_injector(failure: &FailureCell, seed: u64) -> CellInjector {
    match failure {
        FailureCell::Exponential { lambda, .. } => {
            CellInjector::Exp(ExponentialInjector::new(*lambda, seed))
        }
        FailureCell::Weibull { mtbf, shape, .. } => {
            CellInjector::Weibull(WeibullInjector::with_mtbf(*mtbf, *shape, seed))
        }
        FailureCell::Trace { times, .. } => CellInjector::Trace(TraceInjector::new(times.clone())),
    }
}

/// Fault source for one processor of a resolved platform: exponential at
/// the processor's own rate, or Weibull of the same mean when a shape is
/// set (cell-level or per-processor override).
fn make_proc_injector(proc: &dagchkpt_failure::Processor, seed: u64) -> CellInjector {
    match proc.shape {
        Some(shape) if proc.lambda > 0.0 => {
            CellInjector::Weibull(WeibullInjector::with_mtbf(1.0 / proc.lambda, shape, seed))
        }
        _ => CellInjector::Exp(ExponentialInjector::new(proc.lambda, seed)),
    }
}

/// A cell's resolved heterogeneous execution context: the platform plus
/// per-task replication degrees. `None` when the cell runs on the paper's
/// single reference machine — including the **degenerate collapse**: a
/// single-reference-processor platform with all degrees 1 takes the
/// homogeneous code path outright, which is what makes it reproduce the
/// homogeneous outputs byte for byte.
fn resolve_hetero(
    plan: &CellPlan,
    wf: &Workflow,
    model: FaultModel,
) -> Result<Option<(dagchkpt_failure::HeteroPlatform, Vec<usize>)>, ScenarioError> {
    let Some(pspec) = &plan.platform else {
        return Ok(None);
    };
    let platform = pspec.resolve(&plan.failure)?;
    let strategy = plan
        .replication
        .map(|r| r.strategy())
        .unwrap_or(dagchkpt_core::ReplicationStrategy::None);
    let degrees = strategy.degrees(wf, platform.n_procs());
    let degenerate = platform.is_degenerate()
        && platform.procs()[0].lambda == model.lambda()
        && degrees.iter().all(|&d| d == 1);
    Ok(if degenerate {
        None
    } else {
        Some((platform, degrees))
    })
}

/// Executes one cell: every strategy × simulator, in axis order.
///
/// Under the default `proxy` optimizer, schedules are optimized under the
/// cell's proxy [`FaultModel`] (the paper's single-machine view); on a
/// heterogeneous platform the `expected` column and the Monte-Carlo
/// engines then re-evaluate the optimized schedule under replication — so
/// the comparison isolates what the platform and replication change, not
/// the optimizer. The `replication_aware` and `joint` optimizers instead
/// dispatch each heuristic through the backend matching the cell's
/// platform/replication axes (the replicated evaluator, or the joint
/// coordinate descent whose per-task replica sets then replace the static
/// degrees downstream).
pub fn run_cell_plan(
    spec: &ScenarioSpec,
    plan: &CellPlan,
) -> Result<Vec<CellResult>, ScenarioError> {
    run_cell_full(spec, plan).map(|e| e.rows)
}

/// The optimized schedule behind one strategy's rows — what a serving
/// client gets beyond the CSV-shaped numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleDetail {
    /// Strategy display name (`DF-CkptW`, `exact-chain`, …).
    pub strategy: String,
    /// The linearization, as task indices.
    pub order: Vec<usize>,
    /// Checkpointed task indices, ascending.
    pub checkpoints: Vec<usize>,
    /// Winning checkpoint budget, when the strategy sweeps one.
    pub best_n: Option<usize>,
    /// Expected makespan under the cell's objective.
    pub expected: f64,
    /// Per-task replica processor sets (joint optimizer only).
    pub replica_sets: Option<Vec<Vec<usize>>>,
    /// Storage-tier label (`storage` axis only): the winning tier's name
    /// for a uniform assignment, `per-task` for a mixed one. Absent —
    /// and absent from the wire format — without the axis, so served
    /// answers for pre-existing specs stay byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub storage: Option<String>,
    /// Per-task storage-tier indices into the spec's hierarchy
    /// (`storage` axis only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tiers: Option<Vec<usize>>,
}

/// One per-tenant output row of the multi-tenant contention engine: a
/// (cell, strategy, tenant) outcome under the spec's arrival stream and
/// admission policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantRow {
    /// Cell index in the scenario's expansion.
    pub cell: usize,
    /// Workflow display name.
    pub workflow: String,
    /// Task count.
    pub n: usize,
    /// Proxy failure rate.
    pub lambda: f64,
    /// Failure-model label.
    pub failure: String,
    /// Platform label (empty without a `platforms` axis).
    pub platform: String,
    /// Strategy name.
    pub strategy: String,
    /// Admission-policy label.
    pub policy: String,
    /// Arrival-stream label.
    pub arrivals: String,
    /// Tenant name.
    pub tenant: String,
    /// Jobs submitted (admitted + rejected) across all trials.
    pub jobs: u64,
    /// Jobs rejected by `reject_over_capacity`.
    pub rejected: u64,
    /// Fraction of submitted jobs meeting the tenant's SLO deadline
    /// (`NaN` when the tenant saw no jobs).
    pub slo_rate: f64,
    /// Mean response time (finish − arrival) of completed jobs.
    pub mean_response: f64,
    /// Mean slowdown (response ÷ contention-free execution time).
    pub mean_slowdown: f64,
    /// Median response time.
    pub p50_response: f64,
    /// 95th-percentile response time.
    pub p95_response: f64,
    /// 99th-percentile response time.
    pub p99_response: f64,
}

/// Everything one cell produces: CSV-shaped rows plus the schedules.
#[derive(Debug, Clone)]
pub struct CellExecution {
    /// One row per strategy × simulator, in stage order.
    pub rows: Vec<CellResult>,
    /// One entry per strategy, in stage order.
    pub schedules: Vec<ScheduleDetail>,
    /// One row per strategy × tenant when the spec has an `arrivals`
    /// stream; empty otherwise. Purely additive: the classic `rows` are
    /// computed identically whether or not a stream runs.
    pub tenants: Vec<TenantRow>,
}

/// Executes one cell and returns rows *and* schedules — the entry point
/// the serving daemon answers requests through.
pub fn run_cell_full(spec: &ScenarioSpec, plan: &CellPlan) -> Result<CellExecution, ScenarioError> {
    let source = &spec.workflows[plan.source];
    let wf = source.generate(plan.n, plan.seed)?;
    let model = plan.failure.proxy_model();
    let policy = spec.sweep.policy(plan.n);
    let tinf = wf.total_work();
    let ctx = |e: ScenarioError| {
        ScenarioError::new(format!(
            "cell {} ({}, n={}, {}): {}",
            plan.index,
            source.display_name(),
            plan.n,
            plan.failure.label(),
            e.0
        ))
    };
    let hetero = resolve_hetero(plan, &wf, model).map_err(&ctx)?;
    let stream = tenant_stream(spec, plan, tinf).map_err(&ctx)?;
    let storage = spec.storage.resolve().map_err(&ctx)?;
    let mut rows = Vec::new();
    let mut schedules = Vec::new();
    let mut tenants = Vec::new();
    for strat in spec.strategy_cells() {
        let out = match &storage {
            None => run_strategy(
                &wf,
                model,
                strat,
                policy,
                plan.optimizer,
                spec.objective,
                plan.seed,
                hetero.as_ref(),
            ),
            Some((hierarchy, select)) => run_strategy_storage(
                &wf,
                model,
                strat,
                policy,
                plan.optimizer,
                spec.objective,
                plan.seed,
                hetero.as_ref(),
                hierarchy,
                select,
            ),
        }
        .map_err(&ctx)?;
        let expected = match &hetero {
            None => out.expected,
            // Storage outcomes already carry the exact tier-priced
            // replicated value whatever the optimizer —
            // `run_strategy_storage` derives it on the storage-aware
            // evaluator for every candidate tier.
            _ if storage.is_some() => out.expected,
            // The aware and joint optimizers already optimized against —
            // and reported — the exact replicated value (pinned
            // bit-identical to a fresh evaluation by the optimizer tests);
            // re-deriving it would double the analytic cost of the cell.
            Some(_) if plan.optimizer != OptimizerSpec::Proxy => out.expected,
            // Proxy: the schedule was optimized under the single-machine
            // model, so the replicated value must be computed here.
            Some((platform, degrees)) => {
                dagchkpt_core::expected_makespan_replicated(&wf, platform, &out.schedule, degrees)
            }
        };
        schedules.push(ScheduleDetail {
            strategy: out.name.clone(),
            order: out.schedule.order().iter().map(|v| v.index()).collect(),
            checkpoints: out.schedule.checkpoints().iter().collect(),
            best_n: out.best_n,
            expected,
            replica_sets: out.replica_sets.clone(),
            storage: out
                .tiers
                .as_ref()
                .map(|_| storage_label(storage.as_ref(), out.tiers.as_ref())),
            tiers: out.tiers.clone(),
        });
        if let Some(stream) = &stream {
            let stats = run_tenant_trials_with(
                &wf,
                &out.schedule,
                &stream.jobs,
                &stream.config,
                TrialSpec::new(stream.trials, plan.seed),
                |seed| make_injector(&plan.failure, seed),
            );
            for (names, t) in stream.names.iter().zip(&stats) {
                tenants.push(TenantRow {
                    cell: plan.index,
                    workflow: source.display_name(),
                    n: wf.n_tasks(),
                    lambda: model.lambda(),
                    failure: plan.failure.label(),
                    platform: plan
                        .platform
                        .as_ref()
                        .map_or_else(String::new, |p| p.label()),
                    strategy: out.name.clone(),
                    policy: spec.tenancy.policy.label().to_string(),
                    arrivals: spec.arrivals.label(),
                    tenant: names.clone(),
                    jobs: t.jobs,
                    rejected: t.rejected,
                    slo_rate: t.slo_rate(),
                    mean_response: t.response.mean(),
                    mean_slowdown: t.slowdown.mean(),
                    p50_response: t.tail.p50(),
                    p95_response: t.tail.p95(),
                    p99_response: t.tail.p99(),
                });
            }
        }
        // The Monte-Carlo engines simulate the tier-priced workflow copy
        // (same `storage_scales` pricing the analytic value used), the
        // plain workflow otherwise.
        let sim_wf: Cow<'_, Workflow> = match (&storage, &out.tiers) {
            (Some((hierarchy, _)), Some(tiers)) => Cow::Owned(storage_wf(
                &wf,
                hierarchy,
                tiers,
                &replica_counts(wf.n_tasks(), hetero.as_ref(), out.replica_sets.as_ref()),
            )),
            _ => Cow::Borrowed(&wf),
        };
        for sim in &spec.simulators {
            let nan5 = (f64::NAN, f64::NAN, f64::NAN, f64::NAN, f64::NAN);
            let (mc_mean, mc_sem, mc_p50, mc_p95, mc_p99) = match *sim {
                SimulatorSpec::Analytic => nan5,
                SimulatorSpec::MonteCarlo { trials } => {
                    let stats = match (&hetero, &out.replica_sets) {
                        (None, _) => run_trials_with(
                            &sim_wf,
                            &out.schedule,
                            plan.failure.downtime(),
                            TrialSpec::new(trials, plan.seed),
                            |seed| make_injector(&plan.failure, seed),
                        ),
                        (Some((platform, _)), Some(sets)) => run_replicated_sets_trials_with(
                            &sim_wf,
                            &out.schedule,
                            platform,
                            sets,
                            TrialSpec::new(trials, plan.seed),
                            |rank, seed| make_proc_injector(&platform.procs()[rank], seed),
                        ),
                        (Some((platform, degrees)), None) => run_replicated_trials_with(
                            &sim_wf,
                            &out.schedule,
                            platform,
                            degrees,
                            TrialSpec::new(trials, plan.seed),
                            |rank, seed| make_proc_injector(&platform.procs()[rank], seed),
                        ),
                    };
                    (
                        stats.makespan.mean(),
                        stats.makespan.sem(),
                        stats.tail.p50(),
                        stats.tail.p95(),
                        stats.tail.p99(),
                    )
                }
                SimulatorSpec::NonBlocking {
                    trials,
                    compute_rate,
                } => {
                    let tspec = TrialSpec::new(trials, plan.seed);
                    let (stats, sketch) = match (&hetero, &out.replica_sets) {
                        (None, _) => {
                            let cfg = NonBlockingConfig {
                                downtime: plan.failure.downtime(),
                                compute_rate,
                                record_trace: false,
                            };
                            run_nonblocking_trials_with(
                                &sim_wf,
                                &out.schedule,
                                cfg,
                                tspec,
                                |seed| make_injector(&plan.failure, seed),
                            )
                        }
                        (Some((platform, _)), Some(sets)) => {
                            // One injector per used replica rank, indexed
                            // by processor (like the set trial runner).
                            let ranks = dagchkpt_core::replica_rank_count(sets);
                            trial_metric_tail_stats(tspec, |i| {
                                let mut injectors: Vec<CellInjector> = (0..ranks)
                                    .map(|rank| {
                                        make_proc_injector(
                                            &platform.procs()[rank],
                                            tspec.proc_seed(i, rank),
                                        )
                                    })
                                    .collect();
                                simulate_replicated_nonblocking_sets(
                                    &sim_wf,
                                    &out.schedule,
                                    platform,
                                    sets,
                                    &mut injectors,
                                    compute_rate,
                                )
                                .makespan
                            })
                        }
                        (Some((platform, degrees)), None) => {
                            // One injector per used replica rank (like the
                            // blocking runner), not per platform processor.
                            let ranks = degrees
                                .iter()
                                .map(|&d| d.clamp(1, platform.n_procs()))
                                .max()
                                .unwrap_or(1);
                            trial_metric_tail_stats(tspec, |i| {
                                let mut injectors: Vec<CellInjector> = (0..ranks)
                                    .map(|rank| {
                                        make_proc_injector(
                                            &platform.procs()[rank],
                                            tspec.proc_seed(i, rank),
                                        )
                                    })
                                    .collect();
                                simulate_replicated_nonblocking(
                                    &sim_wf,
                                    &out.schedule,
                                    platform,
                                    degrees,
                                    &mut injectors,
                                    compute_rate,
                                )
                                .makespan
                            })
                        }
                    };
                    (
                        stats.mean(),
                        stats.sem(),
                        sketch.p50(),
                        sketch.p95(),
                        sketch.p99(),
                    )
                }
            };
            rows.push(CellResult {
                cell: plan.index,
                workflow: source.display_name(),
                n: wf.n_tasks(),
                lambda: model.lambda(),
                failure: plan.failure.label(),
                shape: plan.failure.shape(),
                rule: source.rule_label(),
                platform: plan
                    .platform
                    .as_ref()
                    .map_or_else(String::new, |p| p.label()),
                replication: plan
                    .replication
                    .as_ref()
                    .map_or_else(String::new, |r| r.label()),
                strategy: out.name.clone(),
                simulator: sim.label(),
                expected,
                tinf,
                ratio: if tinf > 0.0 { expected / tinf } else { 1.0 },
                best_n: out.best_n,
                mc_mean,
                mc_sem,
                z: (mc_mean - expected) / mc_sem,
                mc_p50,
                mc_p95,
                mc_p99,
                storage: storage_label(storage.as_ref(), out.tiers.as_ref()),
            });
        }
    }
    Ok(CellExecution {
        rows,
        schedules,
        tenants,
    })
}

/// The resolved arrival stream of one cell, shared by every strategy.
struct TenantStream {
    jobs: Vec<TenantJob>,
    config: TenantConfig,
    names: Vec<String>,
    trials: usize,
}

/// Resolves the spec's `arrivals`/`tenancy` axes for one cell: concrete
/// arrival instants from the cell seed, round-robin tenant assignment,
/// per-tenant SLO deadlines of `slo_factor × T∞` (strategy-independent,
/// so heuristics compete against the same deadline), and the platform's
/// processor speeds. The per-job fault streams use the cell's reference
/// failure model; processor speed scales each job's whole execution — an
/// approximation that is exact on uniform platforms. Returns `None` when
/// the spec has no stream.
fn tenant_stream(
    spec: &ScenarioSpec,
    plan: &CellPlan,
    tinf: f64,
) -> Result<Option<TenantStream>, ScenarioError> {
    if ArrivalSpec::is_off(&spec.arrivals) {
        return Ok(None);
    }
    let tenants = spec.tenancy.effective_tenants();
    let jobs: Vec<TenantJob> = spec
        .arrivals
        .times(plan.seed)
        .into_iter()
        .enumerate()
        .map(|(k, arrival)| TenantJob {
            arrival,
            tenant: k % tenants.len(),
        })
        .collect();
    let speeds: Vec<f64> = match &plan.platform {
        None => vec![1.0],
        Some(p) => p
            .resolve(&plan.failure)?
            .procs()
            .iter()
            .map(|pr| pr.speed)
            .collect(),
    };
    let policy = match spec.tenancy.policy {
        AdmissionPolicy::Fcfs => TenantPolicy::Fcfs,
        AdmissionPolicy::Priority => TenantPolicy::Priority,
        AdmissionPolicy::FairShare => TenantPolicy::FairShare,
        AdmissionPolicy::RejectOverCapacity => TenantPolicy::RejectOverCapacity,
    };
    let config = TenantConfig {
        speeds,
        downtime: plan.failure.downtime(),
        policy,
        weights: tenants.iter().map(|t| t.weight).collect(),
        deadlines: tenants
            .iter()
            .map(|t| {
                if t.slo_factor > 0.0 {
                    t.slo_factor * tinf
                } else {
                    f64::INFINITY
                }
            })
            .collect(),
    };
    let trials = spec
        .simulators
        .iter()
        .find_map(|s| match s {
            SimulatorSpec::MonteCarlo { trials } => Some(*trials),
            _ => None,
        })
        .ok_or_else(|| {
            ScenarioError::new("arrivals need a montecarlo simulator to draw per-job trials from")
        })?;
    Ok(Some(TenantStream {
        jobs,
        config,
        names: tenants.into_iter().map(|t| t.name).collect(),
        trials,
    }))
}

/// Executes every cell of a scenario and returns the rows — the pure,
/// no-IO entry point the differential and property tests drive.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<Vec<CellResult>, ScenarioError> {
    let mut out = Vec::new();
    for plan in spec.expand()? {
        out.extend(run_cell_plan(spec, &plan)?);
    }
    Ok(out)
}

/// The generic long-format CSV header.
pub const GENERIC_HEADER: [&str; 17] = [
    "cell",
    "workflow",
    "n",
    "lambda",
    "failure",
    "cost_rule",
    "platform",
    "replication",
    "strategy",
    "simulator",
    "expected",
    "tinf",
    "ratio",
    "best_n",
    "mc_mean",
    "mc_sem",
    "z",
];

/// The per-tenant CSV header (`OutputFormat::TenantRows`).
pub const TENANT_HEADER: [&str; 18] = [
    "cell",
    "workflow",
    "n",
    "lambda",
    "failure",
    "platform",
    "strategy",
    "policy",
    "arrivals",
    "tenant",
    "jobs",
    "rejected",
    "slo_rate",
    "mean_response",
    "mean_slowdown",
    "p50_response",
    "p95_response",
    "p99_response",
];

/// Formats one cell's per-tenant rows (the `TenantRows` stage body);
/// same `fnum` float encoding as the generic rows, so non-finite values
/// render as empty fields.
pub fn tenant_csv_rows(rows: &[TenantRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.cell.to_string(),
                r.workflow.clone(),
                r.n.to_string(),
                format!("{:e}", r.lambda),
                r.failure.clone(),
                r.platform.clone(),
                r.strategy.clone(),
                r.policy.clone(),
                r.arrivals.clone(),
                r.tenant.clone(),
                r.jobs.to_string(),
                r.rejected.to_string(),
                fnum(r.slo_rate, 6),
                fnum(r.mean_response, 6),
                fnum(r.mean_slowdown, 6),
                fnum(r.p50_response, 6),
                fnum(r.p95_response, 6),
                fnum(r.p99_response, 6),
            ]
        })
        .collect()
}

fn fnum(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        String::new()
    }
}

fn legacy_row(r: &CellResult) -> Row {
    Row {
        workflow: r.workflow.clone(),
        n: r.n,
        lambda: r.lambda,
        rule: r.rule.clone(),
        heuristic: r.strategy.clone(),
        expected: r.expected,
        tinf: r.tinf,
        ratio: r.ratio,
        best_n: r.best_n,
    }
}

/// The generic (`Rows`) CSV encoding of one result row.
fn generic_row(r: &CellResult) -> Vec<String> {
    vec![
        r.cell.to_string(),
        r.workflow.clone(),
        r.n.to_string(),
        format!("{:e}", r.lambda),
        r.failure.clone(),
        r.rule.clone(),
        r.platform.clone(),
        r.replication.clone(),
        r.strategy.clone(),
        r.simulator.clone(),
        fnum(r.expected, 6),
        fnum(r.tinf, 6),
        fnum(r.ratio, 6),
        r.best_n.map_or(String::new(), |n| n.to_string()),
        fnum(r.mc_mean, 6),
        fnum(r.mc_sem, 6),
        fnum(r.z, 4),
    ]
}

/// Formats one cell's results under `format`.
pub fn cell_csv_rows(format: OutputFormat, rows: &[CellResult]) -> Vec<Vec<String>> {
    match format {
        OutputFormat::Rows => rows.iter().map(generic_row).collect(),
        OutputFormat::RowsTail => rows
            .iter()
            .map(|r| {
                let mut row = generic_row(r);
                row.push(fnum(r.mc_p50, 6));
                row.push(fnum(r.mc_p95, 6));
                row.push(fnum(r.mc_p99, 6));
                row
            })
            .collect(),
        OutputFormat::Figure => rows.iter().map(|r| legacy_row(r).to_csv()).collect(),
        OutputFormat::Validate => rows
            .iter()
            .map(|r| {
                vec![
                    r.workflow.clone(),
                    r.n.to_string(),
                    format!("{:.6}", r.expected),
                    format!("{:.6}", r.mc_mean),
                    format!("{:.6}", r.mc_sem),
                    format!("{:.4}", r.z),
                ]
            })
            .collect(),
        OutputFormat::WeibullStudy => rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.shape),
                    format!("{:.6}", r.mc_mean),
                    format!("{:.6}", r.mc_sem),
                    format!("{:.6}", r.mc_mean / r.expected - 1.0),
                ]
            })
            .collect(),
        OutputFormat::NonBlockingPivot => {
            let mut row = vec![rows[0].workflow.clone()];
            row.extend(rows.iter().map(|r| format!("{:.4}", r.mc_mean)));
            vec![row]
        }
        OutputFormat::StorageRows => rows
            .iter()
            .map(|r| {
                let mut row = generic_row(r);
                row.push(r.storage.clone());
                row
            })
            .collect(),
        // Tenant rows come from `CellExecution::tenants` via
        // [`tenant_csv_rows`], not from the per-simulator results.
        OutputFormat::TenantRows => Vec::new(),
    }
}

/// The `*_best.csv` rows of one cell: best linearization per checkpoint
/// strategy, labelled by the strategy suffix (exactly the pre-refactor
/// figure binaries' transformation).
pub fn cell_best_rows(rows: &[CellResult]) -> Vec<Vec<String>> {
    let legacy: Vec<Row> = rows.iter().map(legacy_row).collect();
    best_per_ckpt_strategy(&legacy)
        .into_iter()
        .map(|mut b| {
            b.heuristic = b
                .heuristic
                .split('-')
                .nth(1)
                .unwrap_or(&b.heuristic)
                .to_string();
            b.to_csv()
        })
        .collect()
}

pub fn stage_header(format: OutputFormat, simulators: &[SimulatorSpec]) -> Vec<String> {
    match format {
        OutputFormat::Rows => GENERIC_HEADER.iter().map(|s| s.to_string()).collect(),
        OutputFormat::RowsTail => GENERIC_HEADER
            .iter()
            .chain(["mc_p50", "mc_p95", "mc_p99"].iter())
            .map(|s| s.to_string())
            .collect(),
        OutputFormat::Figure => Row::CSV_HEADER.iter().map(|s| s.to_string()).collect(),
        OutputFormat::Validate => ["case", "n", "analytic", "mc_mean", "mc_sem", "z"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        OutputFormat::WeibullStudy => ["shape", "mc_mean", "mc_sem", "rel_vs_exponential"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        OutputFormat::NonBlockingPivot => {
            let mut h = vec!["workflow".to_string()];
            h.extend(simulators.iter().map(|s| match s {
                SimulatorSpec::MonteCarlo { .. } => "blocking".to_string(),
                other => other.label(),
            }));
            h
        }
        OutputFormat::StorageRows => GENERIC_HEADER
            .iter()
            .chain(["storage"].iter())
            .map(|s| s.to_string())
            .collect(),
        OutputFormat::TenantRows => TENANT_HEADER.iter().map(|s| s.to_string()).collect(),
    }
}
