//! Running heuristics over experiment cells.

use dagchkpt_core::{run_heuristic, CostRule, Heuristic, SweepPolicy, Workflow};
use dagchkpt_failure::FaultModel;
use dagchkpt_workflows::PegasusKind;

/// One experiment cell: an application instance under one fault rate and
/// one cost rule.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Application.
    pub kind: PegasusKind,
    /// Number of tasks.
    pub n: usize,
    /// Failure rate `λ` (per second).
    pub lambda: f64,
    /// Checkpoint/recovery cost rule.
    pub rule: CostRule,
    /// Generation seed.
    pub seed: u64,
}

impl Cell {
    /// Generates the cell's workflow instance.
    pub fn instance(&self) -> Workflow {
        self.kind.generate(self.n, self.rule, self.seed)
    }

    /// Fault model (`D = 0` as in all paper experiments).
    pub fn model(&self) -> FaultModel {
        FaultModel::new(self.lambda, 0.0)
    }
}

/// One result row (one heuristic on one cell).
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub workflow: String,
    /// Task count.
    pub n: usize,
    /// Failure rate.
    pub lambda: f64,
    /// Cost-rule label (`c=0.1w`, `c=5s`, …).
    pub rule: String,
    /// Heuristic name (`DF-CkptW`, …).
    pub heuristic: String,
    /// Expected makespan `T` (seconds).
    pub expected: f64,
    /// Failure-free, checkpoint-free time `T_inf = Σ w_i`.
    pub tinf: f64,
    /// `T / T_inf` — the paper's plotted metric.
    pub ratio: f64,
    /// Winning checkpoint budget for swept strategies.
    pub best_n: Option<usize>,
}

impl Row {
    /// CSV header matching [`Row::to_csv`].
    pub const CSV_HEADER: [&'static str; 9] = [
        "workflow",
        "n",
        "lambda",
        "cost_rule",
        "heuristic",
        "expected_makespan",
        "tinf",
        "ratio",
        "best_n",
    ];

    /// Serializes the row for [`crate::csvout::write_csv`].
    pub fn to_csv(&self) -> Vec<String> {
        vec![
            self.workflow.clone(),
            self.n.to_string(),
            format!("{:e}", self.lambda),
            self.rule.clone(),
            self.heuristic.clone(),
            format!("{:.6}", self.expected),
            format!("{:.6}", self.tinf),
            format!("{:.6}", self.ratio),
            self.best_n.map_or(String::new(), |n| n.to_string()),
        ]
    }
}

/// Sweep policy matched to the instance size: the paper's exhaustive search
/// up to 300 tasks, then a strided sweep with local refinement (identical
/// answers whenever `E[T]` is locally unimodal in the budget `N`, which it
/// empirically is — see the `strategies` tests).
pub fn auto_policy(n: usize) -> SweepPolicy {
    if n <= 300 {
        SweepPolicy::Exhaustive
    } else {
        SweepPolicy::Strided {
            stride: (n / 64).max(2),
        }
    }
}

/// Runs `heuristics` on one cell.
pub fn run_cell(cell: &Cell, heuristics: &[Heuristic], policy: SweepPolicy) -> Vec<Row> {
    let wf = cell.instance();
    let model = cell.model();
    heuristics
        .iter()
        .map(|&h| {
            let r = run_heuristic(&wf, model, h, policy);
            Row {
                workflow: cell.kind.name().to_string(),
                n: cell.n,
                lambda: cell.lambda,
                rule: cell.rule.label(),
                heuristic: r.name,
                expected: r.expected_makespan,
                tinf: wf.total_work(),
                ratio: r.ratio,
                best_n: r.best_n,
            }
        })
        .collect()
}

/// The best row per checkpoint strategy (minimum expected makespan over the
/// linearizations) — what the paper plots in Figures 3, 5, 6 and 7.
pub fn best_per_ckpt_strategy(rows: &[Row]) -> Vec<Row> {
    let mut best: Vec<Row> = Vec::new();
    for suffix in ["CkptNvr", "CkptAlws", "CkptPer", "CkptW", "CkptC", "CkptD"] {
        if let Some(r) = rows
            .iter()
            .filter(|r| r.heuristic.ends_with(suffix))
            .min_by(|a, b| a.expected.total_cmp(&b.expected))
        {
            best.push(r.clone());
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagchkpt_core::paper_heuristics;

    #[test]
    fn auto_policy_switches_at_300() {
        assert_eq!(auto_policy(100), SweepPolicy::Exhaustive);
        assert_eq!(auto_policy(300), SweepPolicy::Exhaustive);
        assert!(matches!(
            auto_policy(700),
            SweepPolicy::Strided { stride: 10 }
        ));
    }

    #[test]
    fn run_cell_produces_one_row_per_heuristic() {
        let cell = Cell {
            kind: PegasusKind::Montage,
            n: 50,
            lambda: 1e-3,
            rule: CostRule::ProportionalToWork { ratio: 0.1 },
            seed: 1,
        };
        let hs = paper_heuristics(1);
        let rows = run_cell(&cell, &hs, auto_policy(50));
        assert_eq!(rows.len(), 14);
        for r in &rows {
            assert_eq!(r.workflow, "Montage");
            assert!(r.ratio >= 1.0, "{}: ratio {}", r.heuristic, r.ratio);
            assert!(r.ratio.is_finite());
        }
        // CSV serialization is complete.
        assert_eq!(rows[0].to_csv().len(), Row::CSV_HEADER.len());
    }

    #[test]
    fn best_per_ckpt_strategy_covers_all_six() {
        let cell = Cell {
            kind: PegasusKind::CyberShake,
            n: 50,
            lambda: 1e-3,
            rule: CostRule::ProportionalToWork { ratio: 0.1 },
            seed: 2,
        };
        let rows = run_cell(&cell, &paper_heuristics(1), auto_policy(50));
        let best = best_per_ckpt_strategy(&rows);
        assert_eq!(best.len(), 6);
        // CkptW best-of-3 ≤ every CkptW row.
        let w_best = best
            .iter()
            .find(|r| r.heuristic.ends_with("CkptW"))
            .unwrap();
        for r in rows.iter().filter(|r| r.heuristic.ends_with("CkptW")) {
            assert!(w_best.expected <= r.expected + 1e-9);
        }
    }
}
