//! `dagchkpt-bench` — the experiment harness that regenerates every figure
//! of the paper's evaluation (Section 6), plus the validation, ablation and
//! optimality-gap studies described in `DESIGN.md`.
//!
//! One binary per figure:
//!
//! | binary   | paper artifact | content |
//! |----------|----------------|---------|
//! | `fig2`   | Figure 2 (a–c) | linearization impact: CkptW/CkptC × DF/BF/RF |
//! | `fig3`   | Figure 3 (a–d) | checkpoint strategies, `c = 0.1 w`          |
//! | `fig4`   | Figure 4 (a–c) | CyberShake with constant checkpoint costs   |
//! | `fig5`   | Figure 5 (a–d) | checkpoint strategies, `c = 0.01 w`         |
//! | `fig6`   | Figure 6 (a–d) | checkpoint strategies, `c = 5 s`            |
//! | `fig7`   | Figure 7 (a–d) | λ sweep at 200 tasks                        |
//!
//! plus `validate` (analytic evaluator vs Monte-Carlo), `optgap` (heuristics
//! vs brute-force optimum), `ablation` (priorities, evaluator variants) and
//! `weibull` (non-exponential faults). Every binary accepts `--quick`
//! (default) or `--full` (the paper's task counts up to 700), `--out DIR`
//! and `--seed S`, writes CSV series under `results/`, and renders ASCII
//! charts of the same series the paper plots.

pub mod chart;
pub mod cli;
pub mod csvout;
pub mod figures;
pub mod runner;
pub mod studies;

pub use cli::{Options, Scale};
pub use runner::{auto_policy, run_cell, Cell, Row};
