//! `dagchkpt-bench` — the experiment harness regenerating every figure
//! of the paper's evaluation (Section 6), plus the validation, ablation and
//! optimality-gap studies described in `DESIGN.md`.
//!
//! The harness is driven by **declarative campaigns**: a [`ScenarioSpec`]
//! (see [`scenario`]) names workflows × failure models × strategies ×
//! simulators, and the engine (see [`campaign`]) expands the cross-product
//! into cells and streams CSV/JSON rows. One CLI runs everything:
//!
//! ```text
//! dagchkpt-bench --campaign fig2 --quick          # built-in campaign
//! dagchkpt-bench --spec my_scenario.json          # user scenario
//! dagchkpt-bench --spec big.json --shard 0/8      # split across machines
//! ```
//!
//! Built-in campaigns reproduce the paper byte-for-byte (golden corpus
//! under `tests/golden/`):
//!
//! | campaign | paper artifact | content |
//! |----------|----------------|---------|
//! | `fig2`   | Figure 2 (a–c) | linearization impact: CkptW/CkptC × DF/BF/RF |
//! | `fig3`   | Figure 3 (a–d) | checkpoint strategies, `c = 0.1 w`          |
//! | `fig4`   | Figure 4 (a–c) | CyberShake with constant checkpoint costs   |
//! | `fig5`   | Figure 5 (a–d) | checkpoint strategies, `c = 0.01 w`         |
//! | `fig6`   | Figure 6 (a–d) | checkpoint strategies, `c = 5 s`            |
//! | `fig7`   | Figure 7 (a–d) | λ sweep at 200 tasks                        |
//!
//! plus `validate` (analytic evaluator vs Monte-Carlo), `optgap`
//! (heuristics vs brute-force optimum), `ablation` (priorities, evaluator
//! variants), `weibull` (non-exponential faults), `nonblocking`
//! (overlapped checkpoint writes), `extensions` (CkptH + local search),
//! `hetero_replication` (heterogeneous platforms × replication),
//! `replication_aware` (proxy vs replication-aware vs joint optimizer
//! gaps) and `sweep_all`. The pre-refactor one-binary-per-figure entry
//! points were kept as thin aliases for one release and have since been
//! removed — `dagchkpt-bench --campaign <name>` is the only entry point.

pub mod campaign;
pub mod chart;
pub mod cli;
pub mod csvout;
pub mod exec;
pub mod figures;
pub mod runner;
pub mod scenario;
pub mod studies;

pub use campaign::{
    builtin, builtin_names, run_campaign, run_scenario, Campaign, CampaignReport, CellResult,
    OutputFormat, OutputSpec, RunContext, Stage, StageReport, StudyKind,
};
pub use cli::{CampaignArgs, Options, Scale};
pub use exec::{
    cell_best_rows, cell_csv_rows, run_cell_full, run_cell_plan, stage_header, tenant_csv_rows,
    CellExecution, ScheduleDetail, TenantRow, GENERIC_HEADER, TENANT_HEADER,
};
pub use runner::{auto_policy, run_cell, Cell, Row};
pub use scenario::{
    AdmissionPolicy, ArrivalSpec, CellPlan, FailureCell, FailureSpec, ObjectiveSpec, OptimizerSpec,
    PlatformSpec, ProcessorSpec, ReplicationSpec, ScenarioError, ScenarioSpec, SeedPolicy,
    SimulatorSpec, StorageSelect, StorageSpec, StrategyCell, StrategySpec, SweepSpec, TenancySpec,
    TenantSpec, TierSpec, WorkflowSource, MAX_REPLICATION_DEGREE,
};
