//! `dagchkpt-bench` — one CLI over every experiment campaign.
//!
//! ```text
//! dagchkpt-bench --list
//! dagchkpt-bench --campaign fig2 --quick
//! dagchkpt-bench --campaign sweep_all --full --out results --seed 42
//! dagchkpt-bench --spec examples/campaigns/chain_sweep.json
//! dagchkpt-bench --spec big.json --shard 2/8 --resume
//! ```
//!
//! Built-in campaigns reproduce the paper's figures and studies; spec
//! files describe new scenarios declaratively (see the README's "Running
//! campaigns" section).

use dagchkpt_bench::campaign::{builtin, builtin_names, run_campaign, RunContext, Stage};
use dagchkpt_bench::{Campaign, CampaignArgs};

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let args = CampaignArgs::from_args();
    if args.list {
        println!("built-in campaigns:");
        for name in builtin_names() {
            // A registry entry that fails to build is a bug, but it must
            // surface through the CLI error path, not a panic.
            match builtin(name, args.base.scale, args.base.seed) {
                Some(c) => {
                    println!("  {name:<12} {} ({} stages)", c.description, c.stages.len())
                }
                None => fail(&format!(
                    "internal error: listed campaign `{name}` failed to build"
                )),
            }
        }
        return;
    }

    let mut campaigns: Vec<Campaign> = Vec::new();
    for name in &args.campaigns {
        match builtin(name, args.base.scale, args.base.seed) {
            Some(c) => campaigns.push(c),
            None => fail(&format!(
                "unknown campaign `{name}`; available: {}",
                builtin_names().join(", ")
            )),
        }
    }
    for path in &args.specs {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("reading {}: {e}", path.display())));
        let mut c = Campaign::from_json(&text)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
        // An explicit --seed overrides whatever the file pinned.
        if args.seed_explicit {
            for stage in &mut c.stages {
                match stage {
                    Stage::Scenario { scenario, .. } => scenario.seed = args.base.seed,
                    Stage::Study { seed, .. } => *seed = args.base.seed,
                }
            }
        }
        campaigns.push(c);
    }

    let ctx = RunContext {
        out_dir: args.base.out_dir.clone(),
        shard: args.shard,
        resume: args.resume,
        charts: !args.no_charts,
    };
    let mut worst_z = f64::NAN;
    for c in &campaigns {
        match run_campaign(c, &ctx) {
            Ok(report) => {
                let z = report.worst_abs_z();
                if !z.is_nan() && (worst_z.is_nan() || z > worst_z) {
                    worst_z = z;
                }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    if worst_z.is_finite() {
        println!("worst Monte-Carlo |z| = {worst_z:.2} (|z| ≤ 5 expected)");
        if worst_z > 5.0 {
            eprintln!("VALIDATION FAILED: worst |z| = {worst_z:.2} > 5");
            std::process::exit(1);
        }
    }
}
