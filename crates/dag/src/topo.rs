//! Topological orders: Kahn's algorithm, order validation, and exhaustive
//! enumeration of linear extensions (for brute-force optimal scheduling on
//! tiny DAGs).

use crate::error::DagError;
use crate::graph::{Dag, NodeId};

/// Returns a topological order of `dag` (smallest-id-first among ready
/// nodes, so the result is deterministic).
pub fn topological_order(dag: &Dag) -> Vec<NodeId> {
    let n = dag.n_nodes();
    let mut indeg: Vec<usize> = (0..n).map(|v| dag.in_degree(NodeId::from(v))).collect();
    // A binary heap of Reverse(id) would work; with dense ids a sorted Vec
    // used as a min-stack is simpler and fast enough.
    let mut ready: Vec<NodeId> = dag.sources();
    ready.sort_unstable_by(|a, b| b.cmp(a)); // max-at-front so pop() yields min
    let mut order = Vec::with_capacity(n);
    while let Some(v) = ready.pop() {
        order.push(v);
        for &w in dag.succs(v) {
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                let pos = ready.binary_search_by(|x| w.cmp(x)).unwrap_or_else(|p| p);
                ready.insert(pos, w);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "Dag invariant guarantees acyclicity");
    order
}

/// Checks that `order` is a permutation of the node ids that respects every
/// precedence constraint of `dag`.
pub fn validate_order(dag: &Dag, order: &[NodeId]) -> Result<(), DagError> {
    let n = dag.n_nodes();
    if order.len() != n {
        return Err(DagError::NotAPermutation);
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        if v.index() >= n || pos[v.index()] != usize::MAX {
            return Err(DagError::NotAPermutation);
        }
        pos[v.index()] = i;
    }
    for (u, v) in dag.edges() {
        if pos[u.index()] > pos[v.index()] {
            return Err(DagError::PrecedenceViolated(u, v));
        }
    }
    Ok(())
}

/// `true` when `order` is a valid linearization of `dag`.
pub fn is_topological_order(dag: &Dag, order: &[NodeId]) -> bool {
    validate_order(dag, order).is_ok()
}

/// Calls `f` on every linear extension (topological order) of `dag`.
///
/// The number of linear extensions grows factorially; callers must keep `n`
/// small (the brute-force optimum uses `n ≤ 9`). Returns the number of
/// orders visited. If `f` returns `false`, enumeration stops early.
pub fn for_each_linear_extension(dag: &Dag, mut f: impl FnMut(&[NodeId]) -> bool) -> u64 {
    let n = dag.n_nodes();
    let mut indeg: Vec<usize> = (0..n).map(|v| dag.in_degree(NodeId::from(v))).collect();
    let mut prefix: Vec<NodeId> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut count = 0u64;
    let mut stop = false;

    fn recurse(
        dag: &Dag,
        indeg: &mut [usize],
        used: &mut [bool],
        prefix: &mut Vec<NodeId>,
        count: &mut u64,
        stop: &mut bool,
        f: &mut impl FnMut(&[NodeId]) -> bool,
    ) {
        if *stop {
            return;
        }
        let n = dag.n_nodes();
        if prefix.len() == n {
            *count += 1;
            if !f(prefix) {
                *stop = true;
            }
            return;
        }
        for v in 0..n {
            if used[v] || indeg[v] != 0 {
                continue;
            }
            let v = NodeId::from(v);
            used[v.index()] = true;
            prefix.push(v);
            for &w in dag.succs(v) {
                indeg[w.index()] -= 1;
            }
            recurse(dag, indeg, used, prefix, count, stop, f);
            for &w in dag.succs(v) {
                indeg[w.index()] += 1;
            }
            prefix.pop();
            used[v.index()] = false;
            if *stop {
                return;
            }
        }
    }

    recurse(
        dag,
        &mut indeg,
        &mut used,
        &mut prefix,
        &mut count,
        &mut stop,
        &mut f,
    );
    count
}

/// Counts the linear extensions of `dag` (factorial blow-up; tiny DAGs only).
pub fn count_linear_extensions(dag: &Dag) -> u64 {
    for_each_linear_extension(dag, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::DagBuilder;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn diamond() -> Dag {
        let mut b = DagBuilder::new(4);
        b.add_edge(0usize, 1usize);
        b.add_edge(0usize, 2usize);
        b.add_edge(1usize, 3usize);
        b.add_edge(2usize, 3usize);
        b.build().unwrap()
    }

    #[test]
    fn topo_order_of_diamond() {
        let d = diamond();
        let o = topological_order(&d);
        assert!(is_topological_order(&d, &o));
        assert_eq!(o[0], NodeId(0));
        assert_eq!(o[3], NodeId(3));
    }

    #[test]
    fn validate_rejects_bad_orders() {
        let d = diamond();
        let bad = vec![NodeId(1), NodeId(0), NodeId(2), NodeId(3)];
        assert_eq!(
            validate_order(&d, &bad).unwrap_err(),
            DagError::PrecedenceViolated(NodeId(0), NodeId(1))
        );
        let short = vec![NodeId(0)];
        assert_eq!(
            validate_order(&d, &short).unwrap_err(),
            DagError::NotAPermutation
        );
        let dup = vec![NodeId(0), NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(
            validate_order(&d, &dup).unwrap_err(),
            DagError::NotAPermutation
        );
    }

    #[test]
    fn diamond_has_two_linear_extensions() {
        assert_eq!(count_linear_extensions(&diamond()), 2);
    }

    #[test]
    fn chain_has_one_extension_antichain_has_factorial() {
        let chain = generators::chain(5);
        assert_eq!(count_linear_extensions(&chain), 1);
        let anti = DagBuilder::new(4).build().unwrap();
        assert_eq!(count_linear_extensions(&anti), 24);
    }

    #[test]
    fn enumeration_visits_only_valid_orders_and_stops_early() {
        let d = diamond();
        let mut seen = 0;
        let visited = for_each_linear_extension(&d, |o| {
            assert!(is_topological_order(&d, o));
            seen += 1;
            seen < 1 // stop after the first
        });
        assert_eq!(visited, 1);
    }

    proptest! {
        #[test]
        fn kahn_output_is_always_valid(seed in 0u64..500, n in 1usize..40) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let d = generators::layered_random(&mut rng, n, 4, 0.3);
            let o = topological_order(&d);
            prop_assert!(is_topological_order(&d, &o));
        }

        #[test]
        fn extension_count_matches_manual_small(seed in 0u64..50) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let d = generators::layered_random(&mut rng, 6, 3, 0.4);
            let mut orders = std::collections::HashSet::new();
            for_each_linear_extension(&d, |o| {
                orders.insert(o.to_vec());
                true
            });
            prop_assert_eq!(orders.len() as u64, count_linear_extensions(&d));
        }
    }
}
