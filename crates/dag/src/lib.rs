//! DAG substrate for `dagchkpt`.
//!
//! This crate provides the directed-acyclic-graph machinery that every other
//! crate of the workspace builds on:
//!
//! * [`Dag`] — a compact, immutable DAG over dense node ids, built through
//!   [`DagBuilder`] which validates endpoints, rejects self-loops and
//!   duplicate edges, and proves acyclicity at construction time;
//! * [`topo`] — topological orders (Kahn), order validation, and exhaustive
//!   enumeration of linear extensions (used by the brute-force optimum);
//! * [`traverse`] — ancestor/descendant closures, level decomposition,
//!   critical paths, and weight aggregates such as *outweight* (the paper's
//!   task priority);
//! * [`bitset::FixedBitSet`] — a small fixed-capacity bitset used pervasively
//!   for node sets (checkpoint sets, memory states, closures);
//! * [`generators`] — structured DAG families (chains, forks, joins,
//!   fork-joins, diamonds, trees) and seeded random layered DAGs;
//! * [`reduce`] — transitive reduction for precedence analysis (see its
//!   docs for why it is *not* semantics-preserving under the checkpoint
//!   model);
//! * [`dot`] / [`io`] — Graphviz export and a serde-friendly exchange format.
//!
//! Nodes are identified by [`NodeId`], a dense `u32` index. The paper's tasks
//! `T_0 … T_{n−1}` map one-to-one onto node ids `0 … n−1`.

pub mod bitset;
pub mod dot;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod reduce;
pub mod topo;
pub mod traverse;

pub use bitset::FixedBitSet;
pub use error::DagError;
pub use graph::{Dag, DagBuilder, NodeId};
