//! Serde-friendly exchange format for DAG topologies.

use crate::error::DagError;
use crate::graph::{Dag, DagBuilder};
use serde::{Deserialize, Serialize};

/// A plain, serializable description of a DAG: node count plus edge list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagSpec {
    /// Number of nodes (`0..n`).
    pub n: usize,
    /// Directed edges `(pred, succ)`.
    pub edges: Vec<(u32, u32)>,
}

impl From<&Dag> for DagSpec {
    fn from(dag: &Dag) -> Self {
        DagSpec {
            n: dag.n_nodes(),
            edges: dag.edges().map(|(u, v)| (u.0, v.0)).collect(),
        }
    }
}

impl DagSpec {
    /// Validates the spec and builds the immutable DAG.
    pub fn build(&self) -> Result<Dag, DagError> {
        let mut b = DagBuilder::new(self.n);
        for &(u, v) in &self.edges {
            b.add_edge(u as usize, v as usize);
        }
        b.build()
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("DagSpec serializes")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_figure1() {
        let d = generators::paper_figure1();
        let spec = DagSpec::from(&d);
        let back = spec.build().unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn json_roundtrip() {
        let d = generators::fork_join(3);
        let spec = DagSpec::from(&d);
        let json = spec.to_json();
        let parsed = DagSpec::from_json(&json).unwrap();
        assert_eq!(spec, parsed);
        assert_eq!(parsed.build().unwrap(), d);
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let spec = DagSpec {
            n: 2,
            edges: vec![(0, 1), (1, 0)],
        };
        assert!(matches!(spec.build(), Err(DagError::Cycle(_))));
    }

    proptest! {
        #[test]
        fn roundtrip_random(seed in 0u64..200, n in 0usize..50) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let d = generators::layered_random(&mut rng, n, 4, 0.25);
            let spec = DagSpec::from(&d);
            prop_assert_eq!(spec.build().unwrap(), d);
        }
    }
}
