//! Error type for DAG construction and manipulation.

use crate::graph::NodeId;
use std::fmt;

/// Errors raised while building or transforming a [`crate::Dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge endpoint refers to a node id `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph under construction.
        n: usize,
    },
    /// An edge `(u, u)` was added.
    SelfLoop(NodeId),
    /// The same edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// The edge set contains a cycle; the payload is one witness cycle
    /// (a sequence of nodes such that each has an edge to the next, and the
    /// last has an edge to the first).
    Cycle(Vec<NodeId>),
    /// A node sequence handed to an API was not a permutation of `0..n`.
    NotAPermutation,
    /// A node sequence violates at least one precedence constraint; the
    /// payload is the first violated edge `(pred, succ)` in scan order.
    PrecedenceViolated(NodeId, NodeId),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for a graph with {n} nodes")
            }
            DagError::SelfLoop(v) => write!(f, "self-loop on node {v}"),
            DagError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            DagError::Cycle(nodes) => {
                write!(f, "cycle detected: ")?;
                for (i, v) in nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, " -> {}", nodes[0])
            }
            DagError::NotAPermutation => {
                write!(f, "sequence is not a permutation of the node ids")
            }
            DagError::PrecedenceViolated(u, v) => {
                write!(f, "sequence violates precedence: {u} must precede {v}")
            }
        }
    }
}

impl std::error::Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DagError::NodeOutOfRange {
            node: NodeId(7),
            n: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        let e = DagError::SelfLoop(NodeId(2));
        assert!(e.to_string().contains("self-loop"));
        let e = DagError::DuplicateEdge(NodeId(1), NodeId(2));
        assert!(e.to_string().contains("duplicate"));
        let e = DagError::Cycle(vec![NodeId(0), NodeId(1)]);
        assert_eq!(e.to_string(), "cycle detected: 0 -> 1 -> 0");
        assert!(DagError::NotAPermutation
            .to_string()
            .contains("permutation"));
        let e = DagError::PrecedenceViolated(NodeId(3), NodeId(4));
        assert!(e.to_string().contains("precede"));
    }
}
