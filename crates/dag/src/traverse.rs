//! Reachability closures, level decomposition, critical paths, and the
//! weight aggregates used as scheduling priorities.

use crate::bitset::FixedBitSet;
use crate::graph::{Dag, NodeId};

/// Set of strict ancestors of `v` (nodes with a directed path to `v`).
pub fn ancestors(dag: &Dag, v: NodeId) -> FixedBitSet {
    let mut set = FixedBitSet::new(dag.n_nodes());
    let mut stack: Vec<NodeId> = dag.preds(v).to_vec();
    while let Some(u) = stack.pop() {
        if set.insert(u.index()) {
            stack.extend_from_slice(dag.preds(u));
        }
    }
    set
}

/// Set of strict descendants of `v` (nodes reachable from `v`).
pub fn descendants(dag: &Dag, v: NodeId) -> FixedBitSet {
    let mut set = FixedBitSet::new(dag.n_nodes());
    let mut stack: Vec<NodeId> = dag.succs(v).to_vec();
    while let Some(u) = stack.pop() {
        if set.insert(u.index()) {
            stack.extend_from_slice(dag.succs(u));
        }
    }
    set
}

/// Ancestor closure for every node, computed in one topological sweep.
///
/// `result[v]` contains exactly the strict ancestors of `v`. Cost is
/// `O(n²/64 · |E|)` in the worst case but cheap in practice for the sparse
/// workflow graphs this workspace deals with.
pub fn all_ancestors(dag: &Dag) -> Vec<FixedBitSet> {
    let n = dag.n_nodes();
    let order = crate::topo::topological_order(dag);
    let mut closure: Vec<FixedBitSet> = (0..n).map(|_| FixedBitSet::new(n)).collect();
    for &v in &order {
        // Clone-free double indexing: split via std::mem::take.
        for &p in dag.preds(v) {
            let pset = std::mem::take(&mut closure[p.index()]);
            closure[v.index()].union_with(&pset);
            closure[v.index()].insert(p.index());
            closure[p.index()] = pset;
        }
    }
    closure
}

/// Longest-path depth of every node: sources have level 0, and
/// `level[v] = 1 + max(level of predecessors)` otherwise.
pub fn levels(dag: &Dag) -> Vec<usize> {
    let order = crate::topo::topological_order(dag);
    let mut level = vec![0usize; dag.n_nodes()];
    for &v in &order {
        for &p in dag.preds(v) {
            level[v.index()] = level[v.index()].max(level[p.index()] + 1);
        }
    }
    level
}

/// Length (sum of node weights) and node sequence of a critical path —
/// a heaviest source-to-sink path.
pub fn critical_path(dag: &Dag, weight: &[f64]) -> (f64, Vec<NodeId>) {
    assert_eq!(weight.len(), dag.n_nodes(), "one weight per node required");
    let order = crate::topo::topological_order(dag);
    let n = dag.n_nodes();
    if n == 0 {
        return (0.0, Vec::new());
    }
    let mut best = vec![f64::NEG_INFINITY; n];
    let mut from: Vec<Option<NodeId>> = vec![None; n];
    for &v in &order {
        let mut incoming = 0.0f64;
        let mut best_pred: Option<NodeId> = None;
        for &p in dag.preds(v) {
            if best_pred.is_none() || best[p.index()] > incoming {
                incoming = best[p.index()];
                best_pred = Some(p);
            }
        }
        from[v.index()] = best_pred;
        best[v.index()] = incoming + weight[v.index()];
    }
    let end = (0..n)
        .max_by(|&a, &b| best[a].partial_cmp(&best[b]).expect("weights are finite"))
        .expect("n > 0");
    let mut path = vec![NodeId::from(end)];
    while let Some(p) = from[path.last().unwrap().index()] {
        path.push(p);
    }
    path.reverse();
    (best[end], path)
}

/// The paper's task priority: sum of the weights of the **direct**
/// successors of `v` ("outweight").
pub fn outweight(dag: &Dag, weight: &[f64], v: NodeId) -> f64 {
    dag.succs(v).iter().map(|&s| weight[s.index()]).sum()
}

/// Outweight of every node.
pub fn outweights(dag: &Dag, weight: &[f64]) -> Vec<f64> {
    dag.nodes().map(|v| outweight(dag, weight, v)).collect()
}

/// Total weight of all strict descendants of every node (an alternative,
/// deeper-looking priority used in the ablation study).
pub fn descendant_weights(dag: &Dag, weight: &[f64]) -> Vec<f64> {
    // dw[v] = Σ_{u ∈ desc(v)} w_u; a set-based closure is required to avoid
    // double-counting diamond descendants.
    let desc_sets: Vec<FixedBitSet> = all_ancestors(&dag.reversed());
    desc_sets
        .iter()
        .map(|s| s.iter().map(|u| weight[u]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::DagBuilder;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn diamond() -> Dag {
        let mut b = DagBuilder::new(4);
        b.add_edge(0usize, 1usize);
        b.add_edge(0usize, 2usize);
        b.add_edge(1usize, 3usize);
        b.add_edge(2usize, 3usize);
        b.build().unwrap()
    }

    #[test]
    fn ancestors_of_diamond_sink() {
        let d = diamond();
        let a = ancestors(&d, NodeId(3));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(ancestors(&d, NodeId(0)).is_empty());
    }

    #[test]
    fn descendants_of_diamond_source() {
        let d = diamond();
        let s = descendants(&d, NodeId(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(descendants(&d, NodeId(3)).is_empty());
    }

    #[test]
    fn all_ancestors_matches_single_queries() {
        let mut rng = SmallRng::seed_from_u64(7);
        let d = generators::layered_random(&mut rng, 30, 5, 0.3);
        let all = all_ancestors(&d);
        for v in d.nodes() {
            assert_eq!(all[v.index()], ancestors(&d, v), "node {v}");
        }
    }

    #[test]
    fn levels_of_chain_and_diamond() {
        let c = generators::chain(4);
        assert_eq!(levels(&c), vec![0, 1, 2, 3]);
        assert_eq!(levels(&diamond()), vec![0, 1, 1, 2]);
    }

    #[test]
    fn critical_path_picks_heavier_branch() {
        let d = diamond();
        let (len, path) = critical_path(&d, &[1.0, 10.0, 2.0, 1.0]);
        assert_eq!(len, 12.0);
        assert_eq!(path, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn critical_path_of_chain_is_total_weight() {
        let c = generators::chain(5);
        let w = [1.0, 2.0, 3.0, 4.0, 5.0];
        let (len, path) = critical_path(&c, &w);
        assert_eq!(len, 15.0);
        assert_eq!(path.len(), 5);
    }

    #[test]
    fn critical_path_empty_graph() {
        let d = DagBuilder::new(0).build().unwrap();
        let (len, path) = critical_path(&d, &[]);
        assert_eq!(len, 0.0);
        assert!(path.is_empty());
    }

    #[test]
    fn outweight_sums_direct_successors_only() {
        let d = diamond();
        let w = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(outweight(&d, &w, NodeId(0)), 5.0); // w1 + w2
        assert_eq!(outweight(&d, &w, NodeId(3)), 0.0);
        assert_eq!(outweights(&d, &w), vec![5.0, 4.0, 4.0, 0.0]);
    }

    #[test]
    fn descendant_weight_counts_diamond_once() {
        let d = diamond();
        let w = [1.0, 2.0, 3.0, 4.0];
        // descendants(0) = {1,2,3} => 9, not 13 (no double-count of 3).
        assert_eq!(descendant_weights(&d, &w), vec![9.0, 4.0, 4.0, 0.0]);
    }

    proptest! {
        #[test]
        fn ancestor_descendant_duality(seed in 0u64..200, n in 2usize..30) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let d = generators::layered_random(&mut rng, n, 4, 0.35);
            for v in d.nodes() {
                let anc = ancestors(&d, v);
                for u in anc.iter() {
                    prop_assert!(descendants(&d, NodeId::from(u)).contains(v.index()));
                }
            }
        }

        #[test]
        fn levels_respect_edges(seed in 0u64..200, n in 2usize..40) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let d = generators::layered_random(&mut rng, n, 5, 0.3);
            let lv = levels(&d);
            for (u, v) in d.edges() {
                prop_assert!(lv[u.index()] < lv[v.index()]);
            }
        }
    }
}
