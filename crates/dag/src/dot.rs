//! Graphviz DOT export.

use crate::bitset::FixedBitSet;
use crate::graph::{Dag, NodeId};
use std::fmt::Write as _;

/// Options controlling [`to_dot`] output.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Graph name (`digraph <name> { … }`); defaults to `workflow`.
    pub name: Option<String>,
    /// Nodes to draw shaded (the paper shades checkpointed tasks).
    pub shaded: Option<FixedBitSet>,
    /// Rank direction, e.g. `TB` (default) or `LR`.
    pub rankdir: Option<String>,
}

/// Renders `dag` as a Graphviz digraph. `label` maps each node to its label
/// (e.g. `|v| format!("T{v} (w={})", w[v.index()])`).
pub fn to_dot(dag: &Dag, label: impl Fn(NodeId) -> String, opts: &DotOptions) -> String {
    let mut out = String::new();
    let name = opts.name.as_deref().unwrap_or("workflow");
    writeln!(out, "digraph {name} {{").unwrap();
    if let Some(rd) = &opts.rankdir {
        writeln!(out, "  rankdir={rd};").unwrap();
    }
    writeln!(out, "  node [shape=circle];").unwrap();
    for v in dag.nodes() {
        let shaded = opts.shaded.as_ref().is_some_and(|s| s.contains(v.index()));
        let style = if shaded {
            ", style=filled, fillcolor=gray80"
        } else {
            ""
        };
        writeln!(out, "  n{} [label=\"{}\"{style}];", v.0, escape(&label(v))).unwrap();
    }
    for (u, v) in dag.edges() {
        writeln!(out, "  n{} -> n{};", u.0, v.0).unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let d = generators::paper_figure1();
        let mut opts = DotOptions::default();
        let mut shaded = FixedBitSet::new(8);
        shaded.insert(3);
        shaded.insert(4);
        opts.shaded = Some(shaded);
        let dot = to_dot(&d, |v| format!("T{v}"), &opts);
        assert!(dot.starts_with("digraph workflow {"));
        for v in 0..8 {
            assert!(dot.contains(&format!("n{v} [label=\"T{v}\"")), "{dot}");
        }
        assert!(dot.contains("n0 -> n3;"));
        assert!(dot.contains("n6 -> n7;"));
        // checkpointed tasks are shaded
        assert!(dot.contains("n3 [label=\"T3\", style=filled, fillcolor=gray80];"));
        assert!(!dot.contains("n0 [label=\"T0\", style=filled"));
    }

    #[test]
    fn dot_escapes_quotes_and_sets_rankdir() {
        let d = generators::chain(2);
        let opts = DotOptions {
            name: Some("g".into()),
            shaded: None,
            rankdir: Some("LR".into()),
        };
        let dot = to_dot(&d, |_| "a\"b\\c".into(), &opts);
        assert!(dot.contains("digraph g {"));
        assert!(dot.contains("rankdir=LR;"));
        assert!(dot.contains("a\\\"b\\\\c"));
    }
}
