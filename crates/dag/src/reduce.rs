//! Transitive reduction: dropping edges implied by longer paths.
//!
//! Useful for *precedence* analysis (depth metrics, visualization,
//! linear-extension counting) and for importing workflow descriptions whose
//! edges denote pure control ordering.
//!
//! **Not semantics-preserving for checkpoint scheduling.** In the paper's
//! model an edge is a *data* dependency: `T_v` reads `T_u`'s output.
//! Removing a redundant edge `(u, v)` changes which outputs `T_v` must have
//! recovered — e.g. if the intermediate path `u → m → v` has `m`
//! checkpointed, the direct edge forces `u`'s output (lost, perhaps
//! expensive to rebuild) back into `T_v`'s recovery set, while the reduced
//! graph recovers only `m`. The cross-crate test
//! `reduction_can_change_expected_makespan` in `tests/` pins this down. Use
//! the reduction on schedules only when redundant edges are known to carry
//! no data.

use crate::bitset::FixedBitSet;
use crate::graph::{Dag, DagBuilder};
use crate::traverse::all_ancestors;

/// Returns the transitive reduction of `dag`: the unique minimal sub-DAG
/// with the same reachability relation (unique because `dag` is acyclic).
///
/// An edge `(u, v)` is redundant iff some other predecessor of `v` is a
/// descendant of `u`. Cost `O(|E| · n/64)` with bitset ancestor sets.
pub fn transitive_reduction(dag: &Dag) -> Dag {
    let anc = all_ancestors(dag);
    let mut b = DagBuilder::new(dag.n_nodes());
    for (u, v) in dag.edges() {
        // `(u, v)` is implied iff u is a strict ancestor of another
        // predecessor w of v.
        let implied = dag
            .preds(v)
            .iter()
            .any(|&w| w != u && anc[w.index()].contains(u.index()));
        if !implied {
            b.add_edge(u, v);
        }
    }
    b.build().expect("sub-DAG of a DAG is acyclic")
}

/// Number of redundant edges `|E| − |E_reduced|`.
pub fn redundant_edge_count(dag: &Dag) -> usize {
    dag.n_edges() - transitive_reduction(dag).n_edges()
}

/// Checks that two DAGs over the same nodes have identical reachability
/// (used by tests; exposed because it is handy for validating imported
/// workflow descriptions against their reductions).
pub fn same_reachability(a: &Dag, b: &Dag) -> bool {
    if a.n_nodes() != b.n_nodes() {
        return false;
    }
    let (ra, rb) = (all_ancestors(a), all_ancestors(b));
    ra == rb
}

/// Ancestor closure as a set-per-node, exposed for callers that already
/// paid for the reduction (avoids recomputation).
pub fn ancestor_sets(dag: &Dag) -> Vec<FixedBitSet> {
    all_ancestors(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::NodeId;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn removes_shortcut_edge() {
        // 0 -> 1 -> 2 plus the redundant shortcut 0 -> 2.
        let mut b = DagBuilder::new(3);
        b.add_edge(0usize, 1usize);
        b.add_edge(1usize, 2usize);
        b.add_edge(0usize, 2usize);
        let dag = b.build().unwrap();
        let red = transitive_reduction(&dag);
        assert_eq!(red.n_edges(), 2);
        assert!(!red.has_edge(NodeId(0), NodeId(2)));
        assert!(same_reachability(&dag, &red));
        assert_eq!(redundant_edge_count(&dag), 1);
    }

    #[test]
    fn keeps_diamond_intact() {
        let mut b = DagBuilder::new(4);
        b.add_edge(0usize, 1usize);
        b.add_edge(0usize, 2usize);
        b.add_edge(1usize, 3usize);
        b.add_edge(2usize, 3usize);
        let dag = b.build().unwrap();
        let red = transitive_reduction(&dag);
        assert_eq!(red, dag, "no edge of a diamond is redundant");
    }

    #[test]
    fn chain_and_fork_are_already_reduced() {
        for dag in [
            generators::chain(8),
            generators::fork(5),
            generators::grid(3, 3),
        ] {
            assert_eq!(transitive_reduction(&dag), dag);
        }
    }

    #[test]
    fn long_shortcuts_are_removed() {
        // chain 0..4 plus shortcuts 0->4, 1->3.
        let mut b = DagBuilder::new(5);
        for i in 1..5 {
            b.add_edge(i - 1, i);
        }
        b.add_edge(0usize, 4usize);
        b.add_edge(1usize, 3usize);
        let dag = b.build().unwrap();
        let red = transitive_reduction(&dag);
        assert_eq!(red, generators::chain(5));
    }

    proptest! {
        #[test]
        fn reduction_preserves_reachability_and_is_minimal(
            seed in 0u64..400, n in 1usize..40,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let dag = generators::layered_random(&mut rng, n, 4, 0.4);
            let red = transitive_reduction(&dag);
            prop_assert!(red.n_edges() <= dag.n_edges());
            prop_assert!(same_reachability(&dag, &red));
            // Minimality: removing ANY edge of the reduction changes
            // reachability.
            for (u, v) in red.edges() {
                let mut b = DagBuilder::new(n);
                for (a, c) in red.edges() {
                    if (a, c) != (u, v) {
                        b.add_edge(a, c);
                    }
                }
                let smaller = b.build().unwrap();
                prop_assert!(
                    !same_reachability(&red, &smaller),
                    "edge ({u}, {v}) was still redundant"
                );
            }
            // Idempotence.
            prop_assert_eq!(transitive_reduction(&red), red);
        }
    }
}
