//! The immutable [`Dag`] type and its [`DagBuilder`].

use crate::error::DagError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense node identifier (`0..n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node id overflows u32"))
    }
}

/// An immutable directed acyclic graph over nodes `0..n`.
///
/// Construction goes through [`DagBuilder`], which validates endpoints,
/// rejects self-loops and duplicate edges, and proves acyclicity. Adjacency
/// lists are stored sorted, so iteration order is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag {
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    n_edges: usize,
}

impl Dag {
    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.preds.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Direct predecessors of `v`, sorted by id.
    #[inline]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        &self.preds[v.index()]
    }

    /// Direct successors of `v`, sorted by id.
    #[inline]
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        &self.succs[v.index()]
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.preds[v.index()].len()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.succs[v.index()].len()
    }

    /// `true` when the edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.succs[u.index()].binary_search(&v).is_ok()
    }

    /// Iterates over all node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_nodes()).map(NodeId::from)
    }

    /// Iterates over all edges `(pred, succ)` in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.succs(u).iter().map(move |&v| (u, v)))
    }

    /// Entry tasks: nodes without predecessors.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.in_degree(v) == 0).collect()
    }

    /// Exit tasks: nodes without successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.out_degree(v) == 0).collect()
    }

    /// Returns the reversed DAG (every edge flipped).
    pub fn reversed(&self) -> Dag {
        Dag {
            preds: self.succs.clone(),
            succs: self.preds.clone(),
            n_edges: self.n_edges,
        }
    }
}

/// Incremental builder for [`Dag`].
#[derive(Debug, Clone, Default)]
pub struct DagBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// Starts a builder with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        DagBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes currently declared.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Appends a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from(self.n);
        self.n += 1;
        id
    }

    /// Appends `k` fresh nodes and returns their ids.
    pub fn add_nodes(&mut self, k: usize) -> Vec<NodeId> {
        (0..k).map(|_| self.add_node()).collect()
    }

    /// Records the dependency edge `u -> v` (output of `u` feeds `v`).
    ///
    /// Endpoint validation is deferred to [`DagBuilder::build`], so edges may
    /// be added before all nodes exist only if ids were obtained elsewhere.
    pub fn add_edge(&mut self, u: impl Into<NodeId>, v: impl Into<NodeId>) -> &mut Self {
        self.edges.push((u.into(), v.into()));
        self
    }

    /// Validates and freezes the graph.
    ///
    /// # Errors
    ///
    /// [`DagError::NodeOutOfRange`], [`DagError::SelfLoop`],
    /// [`DagError::DuplicateEdge`], or [`DagError::Cycle`].
    pub fn build(self) -> Result<Dag, DagError> {
        let n = self.n;
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in &self.edges {
            for w in [u, v] {
                if w.index() >= n {
                    return Err(DagError::NodeOutOfRange { node: w, n });
                }
            }
            if u == v {
                return Err(DagError::SelfLoop(u));
            }
            succs[u.index()].push(v);
            preds[v.index()].push(u);
        }
        for list in preds.iter_mut().chain(succs.iter_mut()) {
            list.sort_unstable();
        }
        for (u, list) in succs.iter().enumerate() {
            if let Some(w) = list.windows(2).find(|w| w[0] == w[1]) {
                return Err(DagError::DuplicateEdge(NodeId::from(u), w[0]));
            }
        }
        let dag = Dag {
            preds,
            succs,
            n_edges: self.edges.len(),
        };
        if let Some(cycle) = find_cycle(&dag) {
            return Err(DagError::Cycle(cycle));
        }
        Ok(dag)
    }
}

/// Returns one cycle if the graph (viewed as directed) contains any.
fn find_cycle(dag: &Dag) -> Option<Vec<NodeId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = dag.n_nodes();
    let mut mark = vec![Mark::White; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    for start in 0..n {
        if mark[start] != Mark::White {
            continue;
        }
        // Iterative DFS with an explicit stack of (node, next-succ-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(NodeId::from(start), 0)];
        mark[start] = Mark::Grey;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < dag.out_degree(v) {
                let w = dag.succs(v)[*next];
                *next += 1;
                match mark[w.index()] {
                    Mark::White => {
                        mark[w.index()] = Mark::Grey;
                        parent[w.index()] = Some(v);
                        stack.push((w, 0));
                    }
                    Mark::Grey => {
                        // Found a back edge v -> w: reconstruct the cycle.
                        let mut cycle = vec![v];
                        let mut cur = v;
                        while cur != w {
                            cur = parent[cur.index()].expect("grey node has a parent");
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Mark::Black => {}
                }
            } else {
                mark[v.index()] = Mark::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example DAG of the paper's Figure 1: 8 tasks, edges
    /// T0->{T1,T2,T3}, T1->T7? — the figure shows T0 at the top feeding
    /// T1, T2 and T3; T3->T4? Reconstructed conservatively as used throughout
    /// the workspace tests: see `fixtures::paper_figure1`.
    pub fn diamond() -> Dag {
        let mut b = DagBuilder::new(4);
        b.add_edge(0usize, 1usize);
        b.add_edge(0usize, 2usize);
        b.add_edge(1usize, 3usize);
        b.add_edge(2usize, 3usize);
        b.build().unwrap()
    }

    #[test]
    fn builds_diamond() {
        let d = diamond();
        assert_eq!(d.n_nodes(), 4);
        assert_eq!(d.n_edges(), 4);
        assert_eq!(d.preds(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(d.succs(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(d.sources(), vec![NodeId(0)]);
        assert_eq!(d.sinks(), vec![NodeId(3)]);
        assert!(d.has_edge(NodeId(0), NodeId(1)));
        assert!(!d.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn edges_iterates_lexicographically() {
        let d = diamond();
        let e: Vec<_> = d.edges().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn reversed_swaps_adjacency() {
        let d = diamond().reversed();
        assert_eq!(d.sources(), vec![NodeId(3)]);
        assert_eq!(d.sinks(), vec![NodeId(0)]);
        assert!(d.has_edge(NodeId(3), NodeId(1)));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = DagBuilder::new(2);
        b.add_edge(0usize, 5usize);
        assert_eq!(
            b.build().unwrap_err(),
            DagError::NodeOutOfRange {
                node: NodeId(5),
                n: 2
            }
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = DagBuilder::new(2);
        b.add_edge(1usize, 1usize);
        assert_eq!(b.build().unwrap_err(), DagError::SelfLoop(NodeId(1)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = DagBuilder::new(2);
        b.add_edge(0usize, 1usize);
        b.add_edge(0usize, 1usize);
        assert_eq!(
            b.build().unwrap_err(),
            DagError::DuplicateEdge(NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn rejects_two_cycle() {
        let mut b = DagBuilder::new(2);
        b.add_edge(0usize, 1usize);
        b.add_edge(1usize, 0usize);
        match b.build().unwrap_err() {
            DagError::Cycle(c) => assert_eq!(c.len(), 2),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn rejects_long_cycle_and_reports_witness() {
        let mut b = DagBuilder::new(5);
        b.add_edge(0usize, 1usize);
        b.add_edge(1usize, 2usize);
        b.add_edge(2usize, 3usize);
        b.add_edge(3usize, 1usize); // 1 -> 2 -> 3 -> 1
        b.add_edge(3usize, 4usize);
        match b.build().unwrap_err() {
            DagError::Cycle(c) => {
                assert_eq!(c.len(), 3);
                // Witness must actually be a cycle.
                let ids: Vec<u32> = c.iter().map(|v| v.0).collect();
                assert!(ids.contains(&1) && ids.contains(&2) && ids.contains(&3));
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let d = DagBuilder::new(0).build().unwrap();
        assert_eq!(d.n_nodes(), 0);
        assert_eq!(d.sources(), Vec::<NodeId>::new());
    }

    #[test]
    fn isolated_nodes_are_sources_and_sinks() {
        let d = DagBuilder::new(3).build().unwrap();
        assert_eq!(d.sources().len(), 3);
        assert_eq!(d.sinks().len(), 3);
    }

    #[test]
    fn add_nodes_returns_sequential_ids() {
        let mut b = DagBuilder::new(0);
        let ids = b.add_nodes(3);
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(b.add_node(), NodeId(3));
    }

    #[test]
    fn node_id_display_and_index() {
        let v = NodeId(42);
        assert_eq!(v.to_string(), "42");
        assert_eq!(v.index(), 42);
        assert_eq!(NodeId::from(7usize), NodeId(7));
    }
}
