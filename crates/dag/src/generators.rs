//! Structured and random DAG families.
//!
//! These generators produce *topologies only*; task costs are attached by
//! `dagchkpt-core::model::Workflow` (or by the Pegasus-like generators in
//! `dagchkpt-workflows`). All random generators are deterministic given the
//! caller-supplied RNG.

use crate::graph::{Dag, DagBuilder, NodeId};
use rand::Rng;

/// A linear chain `0 -> 1 -> … -> n-1`. `n = 0` yields the empty DAG.
pub fn chain(n: usize) -> Dag {
    let mut b = DagBuilder::new(n);
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    b.build().expect("chain is acyclic")
}

/// A fork: node 0 is the source, nodes `1..=k` are its `k` children
/// (the paper's fork DAG with `n = k` sink tasks).
pub fn fork(k: usize) -> Dag {
    let mut b = DagBuilder::new(k + 1);
    for i in 1..=k {
        b.add_edge(0usize, i);
    }
    b.build().expect("fork is acyclic")
}

/// A join: nodes `0..k` are sources, node `k` is the single sink
/// (the paper's join DAG with `n = k` source tasks).
pub fn join(k: usize) -> Dag {
    let mut b = DagBuilder::new(k + 1);
    for i in 0..k {
        b.add_edge(i, k);
    }
    b.build().expect("join is acyclic")
}

/// A fork-join: source `0`, `width` parallel middle nodes, sink `width+1`.
pub fn fork_join(width: usize) -> Dag {
    let mut b = DagBuilder::new(width + 2);
    for i in 1..=width {
        b.add_edge(0usize, i);
        b.add_edge(i, width + 1);
    }
    b.build().expect("fork-join is acyclic")
}

/// `k` independent chains of length `len` feeding one final sink
/// (a "bundle of pipelines" shape common in scientific workflows).
pub fn parallel_chains(k: usize, len: usize) -> Dag {
    assert!(len >= 1, "chains must have at least one task");
    let n = k * len + 1;
    let sink = n - 1;
    let mut b = DagBuilder::new(n);
    for c in 0..k {
        let base = c * len;
        for i in 1..len {
            b.add_edge(base + i - 1, base + i);
        }
        b.add_edge(base + len - 1, sink);
    }
    b.build().expect("parallel chains are acyclic")
}

/// A complete out-tree (source at the root) with given arity and depth.
/// Depth 0 is a single node.
pub fn out_tree(arity: usize, depth: usize) -> Dag {
    assert!(arity >= 1);
    let mut b = DagBuilder::new(1);
    let mut frontier = vec![NodeId(0)];
    for _ in 0..depth {
        let mut next = Vec::new();
        for v in frontier {
            for _ in 0..arity {
                let c = b.add_node();
                b.add_edge(v, c);
                next.push(c);
            }
        }
        frontier = next;
    }
    b.build().expect("tree is acyclic")
}

/// A random layered DAG with `n` nodes.
///
/// Nodes are dealt into layers of width `1..=max_width`; each node (beyond
/// the first layer) gets an edge from a uniformly random node of the previous
/// layer (guaranteeing weak connectivity to earlier layers), and every other
/// (earlier-layer, node) pair is linked independently with probability `p`.
///
/// The resulting node ids are already in topological order (edges only go
/// from lower to higher layers).
pub fn layered_random(rng: &mut impl Rng, n: usize, max_width: usize, p: f64) -> Dag {
    assert!(max_width >= 1);
    assert!((0.0..=1.0).contains(&p));
    let mut layers: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    while next < n {
        let width = rng.gen_range(1..=max_width).min(n - next);
        layers.push((next..next + width).collect());
        next += width;
    }
    let mut b = DagBuilder::new(n);
    let mut planned: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for li in 1..layers.len() {
        let prev = &layers[li - 1];
        for &v in &layers[li] {
            let anchor = prev[rng.gen_range(0..prev.len())];
            planned.insert((anchor, v));
        }
    }
    for li in 1..layers.len() {
        for &v in &layers[li] {
            for earlier in &layers[..li] {
                for &u in earlier {
                    if rng.gen_bool(p) {
                        planned.insert((u, v));
                    }
                }
            }
        }
    }
    let mut edges: Vec<_> = planned.into_iter().collect();
    edges.sort_unstable();
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build().expect("layered construction is acyclic")
}

/// A 2-D diamond mesh (grid) of `rows × cols` nodes: node `(i,j)` feeds
/// `(i+1,j)` and `(i,j+1)`. A single source `(0,0)` and sink `(r-1,c-1)`.
pub fn grid(rows: usize, cols: usize) -> Dag {
    assert!(rows >= 1 && cols >= 1);
    let id = |i: usize, j: usize| i * cols + j;
    let mut b = DagBuilder::new(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            if i + 1 < rows {
                b.add_edge(id(i, j), id(i + 1, j));
            }
            if j + 1 < cols {
                b.add_edge(id(i, j), id(i, j + 1));
            }
        }
    }
    b.build().expect("grid is acyclic")
}

/// The example DAG of the paper's Figure 1 (8 tasks `T0 … T7`).
///
/// Edges reconstructed from the figure and the walk-through in Section 3:
/// `T0 -> T1`, `T0 -> T3`; `T1 -> T2`; `T3 -> T4`, `T3 -> T5`;
/// `T2 -> T7`, `T4 -> T6`, `T5 -> T6`, `T2 -> T4`? — the text requires:
/// * `T5`'s re-execution recovers checkpointed `T3` ⇒ `T3 -> T5` with no
///   other (non-checkpointed) inputs;
/// * `T6` needs checkpointed `T4` and in-memory `T5` ⇒ `T4 -> T6`, `T5 -> T6`;
/// * `T7` depends on `T2` (lost) with no checkpoint on the reverse path to
///   `T1` ⇒ `T1 -> T2 -> T7`, and `T1` is re-executed because `T0 -> T1`…
///   but re-executing `T1` without `T0` requires `T1` to be an entry task.
///
/// The published figure has `T1` and `T2` as a chain hanging from `T0` with
/// `T0` checkpointed? — `T0` is *not* checkpointed in the figure; the text
/// says "no task is checkpointed on the reverse path from `T7` to `T1`" and
/// that one re-executes `T1`, `T2`, then `T7`, so `T1` must be an entry task.
/// The consistent reading, used here:
/// sources `T0` and `T1`; `T0 -> T3`, `T3 -> {T4, T5}`, `T4 -> T6`,
/// `T5 -> T6`, `T1 -> T2`, `T2 -> T7`, `T6 -> T7`.
/// Checkpointed tasks in the example: `T3` and `T4` (shadowed in the figure).
pub fn paper_figure1() -> Dag {
    let mut b = DagBuilder::new(8);
    b.add_edge(0usize, 3usize);
    b.add_edge(3usize, 4usize);
    b.add_edge(3usize, 5usize);
    b.add_edge(4usize, 6usize);
    b.add_edge(5usize, 6usize);
    b.add_edge(1usize, 2usize);
    b.add_edge(2usize, 7usize);
    b.add_edge(6usize, 7usize);
    b.build().expect("figure-1 DAG is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{is_topological_order, topological_order};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn chain_shape() {
        let d = chain(5);
        assert_eq!(d.n_nodes(), 5);
        assert_eq!(d.n_edges(), 4);
        assert_eq!(d.sources(), vec![NodeId(0)]);
        assert_eq!(d.sinks(), vec![NodeId(4)]);
        assert_eq!(chain(0).n_nodes(), 0);
        assert_eq!(chain(1).n_edges(), 0);
    }

    #[test]
    fn fork_shape() {
        let d = fork(4);
        assert_eq!(d.n_nodes(), 5);
        assert_eq!(d.out_degree(NodeId(0)), 4);
        assert_eq!(d.sinks().len(), 4);
    }

    #[test]
    fn join_shape() {
        let d = join(4);
        assert_eq!(d.n_nodes(), 5);
        assert_eq!(d.in_degree(NodeId(4)), 4);
        assert_eq!(d.sources().len(), 4);
        assert_eq!(d.sinks(), vec![NodeId(4)]);
    }

    #[test]
    fn fork_join_shape() {
        let d = fork_join(3);
        assert_eq!(d.n_nodes(), 5);
        assert_eq!(d.sources(), vec![NodeId(0)]);
        assert_eq!(d.sinks(), vec![NodeId(4)]);
        assert_eq!(d.n_edges(), 6);
    }

    #[test]
    fn parallel_chains_shape() {
        let d = parallel_chains(3, 4);
        assert_eq!(d.n_nodes(), 13);
        assert_eq!(d.sources().len(), 3);
        assert_eq!(d.sinks(), vec![NodeId(12)]);
        assert_eq!(d.in_degree(NodeId(12)), 3);
    }

    #[test]
    fn out_tree_shape() {
        let d = out_tree(2, 3);
        assert_eq!(d.n_nodes(), 1 + 2 + 4 + 8);
        assert_eq!(d.sources(), vec![NodeId(0)]);
        assert_eq!(d.sinks().len(), 8);
        assert_eq!(out_tree(3, 0).n_nodes(), 1);
    }

    #[test]
    fn grid_shape() {
        let d = grid(3, 4);
        assert_eq!(d.n_nodes(), 12);
        assert_eq!(d.sources(), vec![NodeId(0)]);
        assert_eq!(d.sinks(), vec![NodeId(11)]);
        // interior nodes have in-degree 2
        assert_eq!(d.in_degree(NodeId(5)), 2);
    }

    #[test]
    fn paper_figure1_matches_walkthrough() {
        let d = paper_figure1();
        assert_eq!(d.n_nodes(), 8);
        // T0 and T1 are the entry tasks of the reconstruction.
        assert_eq!(d.sources(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(d.sinks(), vec![NodeId(7)]);
        // T6 needs T4 and T5; T5 needs only (checkpointed) T3.
        assert_eq!(d.preds(NodeId(6)), &[NodeId(4), NodeId(5)]);
        assert_eq!(d.preds(NodeId(5)), &[NodeId(3)]);
        // The linearization used in the paper is valid here.
        let lin: Vec<NodeId> = [0u32, 3, 1, 2, 4, 5, 6, 7]
            .iter()
            .map(|&i| NodeId(i))
            .collect();
        assert!(is_topological_order(&d, &lin));
    }

    proptest! {
        #[test]
        fn layered_random_is_connected_past_first_layer(
            seed in 0u64..300, n in 1usize..80, w in 1usize..8,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let d = layered_random(&mut rng, n, w, 0.2);
            prop_assert_eq!(d.n_nodes(), n);
            // ids are already topological
            let ids: Vec<NodeId> = (0..n).map(NodeId::from).collect();
            prop_assert!(is_topological_order(&d, &ids));
            // Kahn agrees
            let o = topological_order(&d);
            prop_assert!(is_topological_order(&d, &o));
        }

        #[test]
        fn layered_random_every_nonfirst_node_has_a_pred(
            seed in 0u64..100, n in 10usize..60,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let d = layered_random(&mut rng, n, 3, 0.0);
            // With p = 0 each node past the first layer still has its anchor.
            let n_sources = d.sources().len();
            prop_assert!(n_sources <= 3, "only first layer can be sources, got {n_sources}");
        }
    }
}
