//! A fixed-capacity bitset over dense node indices.
//!
//! Node sets (checkpoint sets, in-memory output sets, ancestor closures) are
//! the hottest data structure in the evaluator and the simulator, so they use
//! a flat `Vec<u64>` rather than hash sets. The capacity is fixed at
//! construction; all operations between two sets require equal capacity.

use serde::{Deserialize, Serialize};

/// A set of indices in `0..len`, backed by 64-bit words.
///
/// `Default` produces the zero-capacity empty set (useful as a placeholder
/// for `std::mem::take`).
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedBitSet {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitSet {
    /// Creates an empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> Self {
        FixedBitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a set containing every index in `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Builds a set from an iterator of indices (all must be `< len`).
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(len);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// The capacity (indices range over `0..len()`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no index is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    #[inline]
    fn check(&self, i: usize) {
        assert!(
            i < self.len,
            "bitset index {i} out of range (len {})",
            self.len
        );
    }

    /// Inserts `i`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        self.check(i);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        self.check(i);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.check(i);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of indices present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union with `other` (equal capacity required).
    pub fn union_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection with `other` (equal capacity required).
    pub fn intersect_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place difference `self \ other` (equal capacity required).
    pub fn difference_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// `true` when every index of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &FixedBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` when the two sets share no index.
    pub fn is_disjoint_from(&self, other: &FixedBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over present indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl std::fmt::Debug for FixedBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for FixedBitSet {
    /// Collects indices into a set sized to fit the largest one.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let v: Vec<usize> = iter.into_iter().collect();
        let len = v.iter().max().map_or(0, |m| m + 1);
        Self::from_indices(len, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn empty_and_full() {
        let e = FixedBitSet::new(130);
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        assert_eq!(e.len(), 130);
        let f = FixedBitSet::full(130);
        assert_eq!(f.count(), 130);
        assert!(f.contains(0) && f.contains(129));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = FixedBitSet::new(100);
        assert!(s.insert(63));
        assert!(!s.insert(63));
        assert!(s.insert(64));
        assert!(s.contains(63) && s.contains(64) && !s.contains(65));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = FixedBitSet::new(10);
        s.contains(10);
    }

    #[test]
    fn iter_is_sorted() {
        let s = FixedBitSet::from_indices(200, [5usize, 180, 64, 0, 63]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 5, 63, 64, 180]);
    }

    #[test]
    fn zero_capacity_set_works() {
        let s = FixedBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn debug_format_lists_members() {
        let s = FixedBitSet::from_indices(8, [1usize, 3]);
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }

    fn naive_ops(
        len: usize,
        a: &BTreeSet<usize>,
        b: &BTreeSet<usize>,
    ) -> (FixedBitSet, FixedBitSet) {
        (
            FixedBitSet::from_indices(len, a.iter().copied()),
            FixedBitSet::from_indices(len, b.iter().copied()),
        )
    }

    proptest! {
        #[test]
        fn union_matches_btreeset(
            a in proptest::collection::btree_set(0usize..150, 0..50),
            b in proptest::collection::btree_set(0usize..150, 0..50),
        ) {
            let (mut sa, sb) = naive_ops(150, &a, &b);
            sa.union_with(&sb);
            let expect: BTreeSet<usize> = a.union(&b).copied().collect();
            prop_assert_eq!(sa.iter().collect::<BTreeSet<_>>(), expect);
        }

        #[test]
        fn intersection_matches_btreeset(
            a in proptest::collection::btree_set(0usize..150, 0..50),
            b in proptest::collection::btree_set(0usize..150, 0..50),
        ) {
            let (mut sa, sb) = naive_ops(150, &a, &b);
            sa.intersect_with(&sb);
            let expect: BTreeSet<usize> = a.intersection(&b).copied().collect();
            prop_assert_eq!(sa.iter().collect::<BTreeSet<_>>(), expect);
        }

        #[test]
        fn difference_matches_btreeset(
            a in proptest::collection::btree_set(0usize..150, 0..50),
            b in proptest::collection::btree_set(0usize..150, 0..50),
        ) {
            let (mut sa, sb) = naive_ops(150, &a, &b);
            sa.difference_with(&sb);
            let expect: BTreeSet<usize> = a.difference(&b).copied().collect();
            prop_assert_eq!(sa.iter().collect::<BTreeSet<_>>(), expect);
        }

        #[test]
        fn subset_and_disjoint_match_btreeset(
            a in proptest::collection::btree_set(0usize..80, 0..30),
            b in proptest::collection::btree_set(0usize..80, 0..30),
        ) {
            let (sa, sb) = naive_ops(80, &a, &b);
            prop_assert_eq!(sa.is_subset_of(&sb), a.is_subset(&b));
            prop_assert_eq!(sa.is_disjoint_from(&sb), a.is_disjoint(&b));
        }

        #[test]
        fn count_matches_len(a in proptest::collection::btree_set(0usize..300, 0..100)) {
            let s = FixedBitSet::from_indices(300, a.iter().copied());
            prop_assert_eq!(s.count(), a.len());
        }
    }
}
