//! Allocation-count regression suite for the Monte-Carlo fast path.
//!
//! A counting `#[global_allocator]` pins the two structural guarantees of
//! the compiled-plan engines:
//!
//! 1. **zero steady-state heap allocations per trial** — once the plan is
//!    compiled and the per-worker scratch arena is warm, running more
//!    trials must never touch the allocator (blocking, non-blocking and
//!    replicated engines alike);
//! 2. **exactly one plan compile per campaign** — each public runner
//!    flattens the `(workflow, schedule)` pair once and shares it across
//!    every trial of every worker.
//!
//! Tests in this binary serialize on one mutex: the counter is global, so
//! a concurrently allocating test would leak counts into a measurement
//! window.

use dagchkpt_core::{Schedule, Workflow};
use dagchkpt_dag::{generators, topo, FixedBitSet};
use dagchkpt_failure::{ExponentialInjector, HeteroPlatform, Processor};
use dagchkpt_sim::montecarlo::{run_trials_with, TrialSpec};
use dagchkpt_sim::nonblocking::{
    run_nonblocking_trials_with, simulate_nonblocking_planned, NonBlockingConfig,
};
use dagchkpt_sim::replicated::{run_replicated_trials_with, simulate_replicated_planned};
use dagchkpt_sim::tenant::{run_tenant_trials_with, TenantConfig, TenantJob, TenantPolicy};
use dagchkpt_sim::trialplan::{plan_compile_count, simulate_planned, TrialPlan, TrialScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Forwards to the system allocator, counting every `alloc`/`realloc`.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Serializes the measurement windows: held for each entire test body.
static SERIAL: Mutex<()> = Mutex::new(());

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

fn fixture(n: usize, every: usize) -> (Workflow, Schedule) {
    let wf = Workflow::uniform(generators::chain(n), 9.0, 1.1);
    let order = topo::topological_order(wf.dag());
    let ckpt = FixedBitSet::from_indices(n, (0..n).filter(|i| i % every == 0));
    let s = Schedule::new(&wf, order, ckpt).unwrap();
    (wf, s)
}

#[test]
fn blocking_trials_make_zero_steady_state_allocations() {
    let _guard = SERIAL.lock().unwrap();
    let (wf, s) = fixture(40, 3);
    let plan = TrialPlan::compile(&wf, &s);
    let mut scratch = TrialScratch::new(plan.n_tasks());
    let mut sink = 0.0f64;
    // Warm the arena across enough fault patterns to reach steady state.
    for seed in 0..64u64 {
        let mut inj = ExponentialInjector::new(6e-3, seed);
        sink += simulate_planned(&plan, &mut scratch, &mut inj, 1.5).makespan;
    }
    let before = alloc_count();
    for seed in 64..320u64 {
        let mut inj = ExponentialInjector::new(6e-3, seed);
        sink += simulate_planned(&plan, &mut scratch, &mut inj, 1.5).makespan;
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "blocking fast path allocated {delta} times over 256 trials"
    );
    assert!(sink.is_finite());
}

#[test]
fn nonblocking_trials_make_zero_steady_state_allocations() {
    let _guard = SERIAL.lock().unwrap();
    let (wf, s) = fixture(40, 3);
    let plan = TrialPlan::compile(&wf, &s);
    let mut scratch = TrialScratch::new(plan.n_tasks());
    let cfg = NonBlockingConfig {
        downtime: 1.5,
        compute_rate: 0.7,
        record_trace: false,
    };
    let mut sink = 0.0f64;
    for seed in 0..64u64 {
        let mut inj = ExponentialInjector::new(6e-3, seed);
        sink += simulate_nonblocking_planned(&plan, &mut scratch, &mut inj, cfg).makespan;
    }
    let before = alloc_count();
    for seed in 64..320u64 {
        let mut inj = ExponentialInjector::new(6e-3, seed);
        sink += simulate_nonblocking_planned(&plan, &mut scratch, &mut inj, cfg).makespan;
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "non-blocking fast path allocated {delta} times over 256 trials"
    );
    assert!(sink.is_finite());
}

#[test]
fn replicated_trials_make_zero_steady_state_allocations() {
    let _guard = SERIAL.lock().unwrap();
    let (wf, s) = fixture(24, 2);
    let platform = HeteroPlatform::new(
        vec![
            Processor {
                speed: 2.0,
                ..Processor::reference(4e-3)
            },
            Processor::reference(1e-3),
        ],
        1.0,
    )
    .unwrap();
    let prefix: Vec<usize> = (0..2).collect();
    let sets: Vec<&[usize]> = (0..24).map(|i| &prefix[..1 + i % 2]).collect();
    let plan = TrialPlan::compile(&wf, &s);
    let mut scratch = TrialScratch::new(plan.n_tasks());
    let mut injectors: Vec<ExponentialInjector> = Vec::with_capacity(2);
    let spec = TrialSpec::new(320, 5);
    let run = |i: usize, scratch: &mut TrialScratch, injectors: &mut Vec<ExponentialInjector>| {
        injectors.clear();
        injectors.extend((0..2).map(|rank| {
            ExponentialInjector::new(platform.procs()[rank].lambda, spec.proc_seed(i, rank))
        }));
        simulate_replicated_planned(&plan, scratch, &platform, &sets, injectors).makespan
    };
    let mut sink = 0.0f64;
    for i in 0..64 {
        sink += run(i, &mut scratch, &mut injectors);
    }
    let before = alloc_count();
    for i in 64..320 {
        sink += run(i, &mut scratch, &mut injectors);
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "replicated fast path allocated {delta} times over 256 trials"
    );
    assert!(sink.is_finite());
}

/// Every public campaign runner compiles its trial plan exactly once,
/// no matter how many trials, workers or jobs the campaign spans.
#[test]
fn every_runner_compiles_exactly_one_plan_per_campaign() {
    let _guard = SERIAL.lock().unwrap();
    let (wf, s) = fixture(16, 2);
    let spec = TrialSpec::new(200, 9);

    let before = plan_compile_count();
    run_trials_with(&wf, &s, 1.0, spec, |seed| {
        ExponentialInjector::new(5e-3, seed)
    });
    assert_eq!(plan_compile_count() - before, 1, "blocking runner");

    let before = plan_compile_count();
    let cfg = NonBlockingConfig {
        downtime: 1.0,
        compute_rate: 0.8,
        record_trace: false,
    };
    run_nonblocking_trials_with(&wf, &s, cfg, spec, |seed| {
        ExponentialInjector::new(5e-3, seed)
    });
    assert_eq!(plan_compile_count() - before, 1, "non-blocking runner");

    let platform = HeteroPlatform::new(
        vec![
            Processor {
                speed: 2.0,
                ..Processor::reference(4e-3)
            },
            Processor::reference(1e-3),
        ],
        1.0,
    )
    .unwrap();
    let degrees = vec![2usize; 16];
    let before = plan_compile_count();
    run_replicated_trials_with(&wf, &s, &platform, &degrees, spec, |rank, seed| {
        ExponentialInjector::new(platform.procs()[rank].lambda, seed)
    });
    assert_eq!(plan_compile_count() - before, 1, "replicated runner");

    let jobs: Vec<TenantJob> = (0..4)
        .map(|k| TenantJob {
            arrival: 30.0 * k as f64,
            tenant: k % 2,
        })
        .collect();
    let config = TenantConfig {
        speeds: vec![1.0, 1.0],
        downtime: 1.0,
        policy: TenantPolicy::Fcfs,
        weights: vec![1.0, 1.0],
        deadlines: vec![f64::INFINITY, f64::INFINITY],
    };
    let before = plan_compile_count();
    run_tenant_trials_with(&wf, &s, &jobs, &config, spec, |seed| {
        ExponentialInjector::new(5e-3, seed)
    });
    assert_eq!(plan_compile_count() - before, 1, "tenant runner");
}
