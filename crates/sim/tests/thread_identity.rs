//! Thread-count bit-identity over the scratch-arena fast path.
//!
//! The executor contract — statistics are bit-identical for any
//! `RAYON_NUM_THREADS`, and for the sequential path — predates the
//! compiled-plan engines; this suite re-pins it on the new path for all
//! four of them (blocking Monte-Carlo, non-blocking, replicated, tenant).
//! The vendored executor reads the variable at every dispatch, so each
//! run sees its own pool size; a mutex serializes the env mutation.

use dagchkpt_core::{Schedule, Workflow};
use dagchkpt_dag::{generators, topo, FixedBitSet};
use dagchkpt_failure::{ExponentialInjector, HeteroPlatform, Processor};
use dagchkpt_sim::montecarlo::{run_trials_with, TrialSpec, TrialStats};
use dagchkpt_sim::nonblocking::{run_nonblocking_trials_with, NonBlockingConfig};
use dagchkpt_sim::replicated::run_replicated_trials_with;
use dagchkpt_sim::tenant::{run_tenant_trials_with, TenantConfig, TenantJob, TenantPolicy};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` under each pool size plus the pre-set environment, restoring
/// the variable afterwards, and returns one result per configuration.
fn under_thread_counts<T>(f: impl Fn() -> T) -> Vec<T> {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    let runs = ["1", "4"]
        .iter()
        .map(|n| {
            std::env::set_var("RAYON_NUM_THREADS", n);
            f()
        })
        .collect();
    match saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    runs
}

fn fixture() -> (Workflow, Schedule) {
    let n = 23;
    let wf = Workflow::uniform(generators::chain(n), 8.0, 0.9);
    let order = topo::topological_order(wf.dag());
    let ckpt = FixedBitSet::from_indices(n, (0..n).filter(|i| i % 3 == 0));
    let s = Schedule::new(&wf, order, ckpt).unwrap();
    (wf, s)
}

fn hetero2() -> HeteroPlatform {
    HeteroPlatform::new(
        vec![
            Processor {
                speed: 2.0,
                ..Processor::reference(4e-3)
            },
            Processor::reference(1e-3),
        ],
        1.0,
    )
    .unwrap()
}

fn assert_trial_stats_identical(a: &TrialStats, b: &TrialStats) {
    assert_eq!(a.makespan.n(), b.makespan.n());
    assert_eq!(a.makespan.mean().to_bits(), b.makespan.mean().to_bits());
    assert_eq!(
        a.makespan.variance().to_bits(),
        b.makespan.variance().to_bits()
    );
    assert_eq!(a.makespan.min().to_bits(), b.makespan.min().to_bits());
    assert_eq!(a.makespan.max().to_bits(), b.makespan.max().to_bits());
    assert_eq!(a.faults.mean().to_bits(), b.faults.mean().to_bits());
    for (x, y) in a.mean_breakdown.iter().zip(&b.mean_breakdown) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.tail, b.tail, "sketch state must not move");
}

#[test]
fn blocking_fast_path_is_bit_identical_across_thread_counts() {
    let (wf, s) = fixture();
    let runs = under_thread_counts(|| {
        run_trials_with(&wf, &s, 1.5, TrialSpec::new(2_048, 31), |seed| {
            ExponentialInjector::new(6e-3, seed)
        })
    });
    let sequential = run_trials_with(&wf, &s, 1.5, TrialSpec::sequential(2_048, 31), |seed| {
        ExponentialInjector::new(6e-3, seed)
    });
    for r in &runs {
        assert_trial_stats_identical(r, &sequential);
    }
}

#[test]
fn nonblocking_fast_path_is_bit_identical_across_thread_counts() {
    let (wf, s) = fixture();
    let cfg = NonBlockingConfig {
        downtime: 1.5,
        compute_rate: 0.7,
        record_trace: false,
    };
    let campaign = |spec: TrialSpec| {
        run_nonblocking_trials_with(&wf, &s, cfg, spec, |seed| {
            ExponentialInjector::new(6e-3, seed)
        })
    };
    let runs = under_thread_counts(|| campaign(TrialSpec::new(2_048, 31)));
    let (seq_stats, seq_tail) = campaign(TrialSpec::sequential(2_048, 31));
    for (stats, tail) in &runs {
        assert_eq!(stats.n(), seq_stats.n());
        assert_eq!(stats.mean().to_bits(), seq_stats.mean().to_bits());
        assert_eq!(stats.variance().to_bits(), seq_stats.variance().to_bits());
        assert_eq!(stats.min().to_bits(), seq_stats.min().to_bits());
        assert_eq!(stats.max().to_bits(), seq_stats.max().to_bits());
        assert_eq!(tail, &seq_tail, "sketch state must not move");
    }
}

#[test]
fn replicated_fast_path_is_bit_identical_across_thread_counts() {
    let (wf, s) = fixture();
    let platform = hetero2();
    let degrees: Vec<usize> = (0..wf.n_tasks()).map(|i| 1 + i % 2).collect();
    let campaign = |spec: TrialSpec| {
        run_replicated_trials_with(&wf, &s, &platform, &degrees, spec, |rank, seed| {
            ExponentialInjector::new(platform.procs()[rank].lambda, seed)
        })
    };
    let runs = under_thread_counts(|| campaign(TrialSpec::new(1_024, 17)));
    let sequential = campaign(TrialSpec::sequential(1_024, 17));
    for r in &runs {
        assert_trial_stats_identical(r, &sequential);
    }
}

#[test]
fn tenant_fast_path_is_bit_identical_across_thread_counts() {
    let (wf, s) = fixture();
    let jobs: Vec<TenantJob> = (0..6)
        .map(|k| TenantJob {
            arrival: 25.0 * k as f64,
            tenant: k % 3,
        })
        .collect();
    let config = TenantConfig {
        speeds: vec![1.0, 1.0],
        downtime: 1.5,
        policy: TenantPolicy::FairShare,
        weights: vec![3.0, 2.0, 1.0],
        deadlines: vec![300.0, 600.0, f64::INFINITY],
    };
    let campaign = |spec: TrialSpec| {
        run_tenant_trials_with(&wf, &s, &jobs, &config, spec, |seed| {
            ExponentialInjector::new(5e-3, seed)
        })
    };
    let runs = under_thread_counts(|| campaign(TrialSpec::new(1_024, 53)));
    let sequential = campaign(TrialSpec::sequential(1_024, 53));
    for r in &runs {
        assert_eq!(r.len(), sequential.len());
        for (a, b) in r.iter().zip(&sequential) {
            assert_eq!(a.jobs, b.jobs);
            assert_eq!(a.rejected, b.rejected);
            assert_eq!(a.slo_hits, b.slo_hits);
            assert_eq!(a.response.mean().to_bits(), b.response.mean().to_bits());
            assert_eq!(
                a.response.variance().to_bits(),
                b.response.variance().to_bits()
            );
            assert_eq!(a.slowdown.mean().to_bits(), b.slowdown.mean().to_bits());
            assert_eq!(a.tail, b.tail, "sketch state must not move");
        }
    }
}
