//! Online multi-tenant contention engine: a stream of workflow jobs
//! arriving over time and contending for a shared pool of processors.
//!
//! The model is the paper's sequential execution model lifted to a
//! *stream*: each admitted job runs the cell's schedule on one processor
//! exactly as the single-tenant engine would (same recovery plans, same
//! checkpoint semantics, same fault process — [`simulate`] is called
//! verbatim per job), and contention happens only *between* jobs: when
//! every processor is busy, arriving jobs queue and are admitted under a
//! [`TenantPolicy`]. Per-tenant metrics (response time, slowdown, SLO
//! hit rate, response tails via the P² sketch) stream through the same
//! chunk-folded accumulators as [`crate::montecarlo`], so memory is
//! O(chunks) and the statistics are bit-identical for any
//! `RAYON_NUM_THREADS`.
//!
//! Seeding follows the replicated-run convention: job `j` of trial `i`
//! draws its fault stream from [`TrialSpec::proc_seed`]`(i, j)`, whose
//! rank 0 is the plain trial seed — so a degenerate stream (one job at
//! `t = 0`) reproduces the single-tenant [`crate::run_trials_with`]
//! makespan statistics **bit for bit**.
//!
//! Heterogeneous speeds are an approximation at the stream level: each
//! job's fault-perturbed execution time is drawn once under the cell's
//! reference-rate model and divided by the speed of the processor it
//! lands on. On uniform platforms (every speed 1) this is exact.

use crate::montecarlo::{fold_sequential_chunk_states, TrialSpec};
use crate::quantile::QuantileSketch;
use crate::stats::Stats;
use crate::trialplan::{simulate_planned, TrialPlan, TrialScratch};
use dagchkpt_core::{Schedule, Workflow};
use dagchkpt_failure::FaultInjector;
use rayon::prelude::*;

/// How contending jobs are admitted to free processors. Mirrors the
/// bench crate's `AdmissionPolicy` axis without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantPolicy {
    /// Admit the earliest-arrived waiting job.
    Fcfs,
    /// Admit the waiting job of the heaviest tenant (earliest arrival
    /// breaks ties).
    Priority,
    /// Admit the waiting job of the tenant with the smallest
    /// started-jobs-to-weight ratio (earliest arrival breaks ties).
    FairShare,
    /// FCFS admission, but an arrival finding no free processor *and* a
    /// full queue (one waiting job per processor) is rejected outright;
    /// rejected jobs count as SLO misses and contribute no response
    /// sample.
    RejectOverCapacity,
}

/// One arriving job of the stream.
#[derive(Debug, Clone, Copy)]
pub struct TenantJob {
    /// Arrival instant (seconds; the stream must be non-decreasing).
    pub arrival: f64,
    /// Tenant class index (into [`TenantConfig::weights`]/`deadlines`).
    pub tenant: usize,
}

/// Platform, policy and tenant-class parameters of one stream simulation.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Relative processor speeds (> 0). Admission picks the fastest free
    /// processor (lowest index breaks ties).
    pub speeds: Vec<f64>,
    /// Downtime per fault, forwarded to the per-job [`simulate`] calls.
    pub downtime: f64,
    /// Admission policy under contention.
    pub policy: TenantPolicy,
    /// Per-tenant scheduling weight (used by `Priority` and `FairShare`).
    pub weights: Vec<f64>,
    /// Per-tenant absolute response-time deadline; `f64::INFINITY`
    /// disables the SLO (every completed job is a hit).
    pub deadlines: Vec<f64>,
}

/// Per-tenant aggregate over all trials of one stream simulation.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Jobs submitted (admitted + rejected) across all trials.
    pub jobs: u64,
    /// Jobs rejected by `RejectOverCapacity`.
    pub rejected: u64,
    /// Completed jobs that met the tenant's deadline (rejected jobs
    /// never count).
    pub slo_hits: u64,
    /// Response time (finish − arrival) of completed jobs.
    pub response: Stats,
    /// Slowdown (response ÷ the job's own contention-free execution time
    /// on its processor, ≥ 1) of completed jobs.
    pub slowdown: Stats,
    /// Response-time tail sketch (p50/p95/p99) of completed jobs.
    pub tail: QuantileSketch,
}

impl TenantStats {
    fn new() -> Self {
        TenantStats {
            jobs: 0,
            rejected: 0,
            slo_hits: 0,
            response: Stats::new(),
            slowdown: Stats::new(),
            tail: QuantileSketch::new(),
        }
    }

    fn merge(mut self, other: TenantStats) -> Self {
        self.jobs += other.jobs;
        self.rejected += other.rejected;
        self.slo_hits += other.slo_hits;
        self.response = self.response.merge(other.response);
        self.slowdown = self.slowdown.merge(other.slowdown);
        self.tail = self.tail.merge(other.tail);
        self
    }

    /// Fraction of submitted jobs that met their SLO (`NaN` when the
    /// tenant saw no jobs). Rejections land in the denominator only.
    pub fn slo_rate(&self) -> f64 {
        if self.jobs == 0 {
            f64::NAN
        } else {
            self.slo_hits as f64 / self.jobs as f64
        }
    }
}

/// Outcome of one job in one trial, pushed into the accumulators in
/// arrival order.
#[derive(Debug, Clone, Copy)]
struct JobOutcome {
    tenant: usize,
    /// `None` when the job was rejected.
    response: Option<f64>,
    /// Contention-free execution time on the processor the job ran on.
    service: f64,
}

/// Reusable buffers for the stream replay: one per fold chunk, reset at
/// the top of every trial so the steady state allocates nothing.
struct StreamScratch {
    outcomes: Vec<JobOutcome>,
    free: Vec<bool>,
    running: Vec<(f64, usize, usize)>,
    waiting: Vec<usize>,
    started: Vec<u64>,
}

impl StreamScratch {
    fn new(n_jobs: usize, n_procs: usize, n_tenants: usize) -> Self {
        StreamScratch {
            outcomes: Vec::with_capacity(n_jobs),
            free: vec![true; n_procs],
            running: Vec::with_capacity(n_procs),
            waiting: Vec::with_capacity(n_jobs),
            started: vec![0; n_tenants],
        }
    }
}

/// One trial of the stream: a deterministic event-driven replay filling
/// `st.outcomes` (valid until the next call).
///
/// Event order is fixed: at equal instants, finishes are processed
/// before arrivals (freed processors are visible to the arriving job),
/// and equal-time finishes resolve lowest-job-index first — so the
/// replay is a pure function of `(jobs, config, services)`.
fn run_stream_into(
    jobs: &[TenantJob],
    config: &TenantConfig,
    services: &[f64],
    st: &mut StreamScratch,
) {
    let n_procs = config.speeds.len();
    let StreamScratch {
        outcomes,
        free,
        running,
        waiting,
        started,
    } = st;
    outcomes.clear();
    outcomes.extend(jobs.iter().map(|j| JobOutcome {
        tenant: j.tenant,
        response: None,
        service: f64::NAN,
    }));
    free.clear();
    free.resize(n_procs, true);
    // (finish time, processor, job); scanned for the minimum — streams
    // are dozens of jobs, not millions.
    running.clear();
    waiting.clear();
    started.clear();
    started.resize(config.weights.len(), 0);
    let mut next_arrival = 0usize;

    // Admits waiting jobs onto free processors at instant `t` until one
    // side runs dry.
    let admit = |t: f64,
                 free: &mut Vec<bool>,
                 waiting: &mut Vec<usize>,
                 running: &mut Vec<(f64, usize, usize)>,
                 started: &mut Vec<u64>,
                 outcomes: &mut Vec<JobOutcome>| {
        loop {
            if waiting.is_empty() {
                return;
            }
            // Fastest free processor, lowest index on ties.
            let proc = match (0..free.len()).filter(|&p| free[p]).max_by(|&a, &b| {
                config.speeds[a]
                    .partial_cmp(&config.speeds[b])
                    .expect("speeds are finite")
                    .then(b.cmp(&a))
            }) {
                Some(p) => p,
                None => return,
            };
            // Waiting jobs are kept in arrival order, so "earliest
            // arrival breaks ties" is "lowest position wins".
            let pos = match config.policy {
                TenantPolicy::Fcfs | TenantPolicy::RejectOverCapacity => 0,
                TenantPolicy::Priority => {
                    let mut best = 0;
                    for (i, &j) in waiting.iter().enumerate().skip(1) {
                        if config.weights[jobs[j].tenant]
                            > config.weights[jobs[waiting[best]].tenant]
                        {
                            best = i;
                        }
                    }
                    best
                }
                TenantPolicy::FairShare => {
                    let share = |j: usize| {
                        let t = jobs[j].tenant;
                        started[t] as f64 / config.weights[t]
                    };
                    let mut best = 0;
                    for (i, &j) in waiting.iter().enumerate().skip(1) {
                        if share(j) < share(waiting[best]) {
                            best = i;
                        }
                    }
                    best
                }
            };
            let job = waiting.remove(pos);
            let service = services[job] / config.speeds[proc];
            outcomes[job].service = service;
            started[jobs[job].tenant] += 1;
            free[proc] = false;
            running.push((t + service, proc, job));
        }
    };

    loop {
        // Next finish, lowest job index on equal times.
        let next_finish = running
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.0.partial_cmp(&b.0)
                    .expect("finish times are finite")
                    .then(a.2.cmp(&b.2))
            })
            .map(|(i, &(t, _, _))| (i, t));
        let arrival = (next_arrival < jobs.len()).then(|| jobs[next_arrival].arrival);
        // Finishes win ties so freed processors are visible to the
        // simultaneous arrival.
        let take_finish = match (next_finish, arrival) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((_, tf)), Some(ta)) => tf <= ta,
        };
        if take_finish {
            let (idx, tf) = next_finish.expect("checked above");
            let (_, proc, job) = running.swap_remove(idx);
            outcomes[job].response = Some(tf - jobs[job].arrival);
            free[proc] = true;
            admit(tf, free, waiting, running, started, outcomes);
        } else {
            let ta = arrival.expect("checked above");
            let job = next_arrival;
            next_arrival += 1;
            let full = !free.iter().any(|&f| f) && waiting.len() >= n_procs;
            if config.policy == TenantPolicy::RejectOverCapacity && full {
                // `outcomes[job].response` stays `None`: the rejection
                // marker the accumulator counts.
            } else {
                waiting.push(job);
                admit(ta, free, waiting, running, started, outcomes);
            }
        }
    }
}

/// Per-chunk accumulator: one [`TenantStats`] per tenant, pushed in
/// arrival order within each trial and merged in chunk order.
#[derive(Debug, Clone)]
struct StreamAccum {
    per: Vec<TenantStats>,
}

impl StreamAccum {
    fn identity(n_tenants: usize) -> Self {
        StreamAccum {
            per: (0..n_tenants).map(|_| TenantStats::new()).collect(),
        }
    }

    fn push(&mut self, outcomes: &[JobOutcome], deadlines: &[f64]) {
        for o in outcomes {
            let t = &mut self.per[o.tenant];
            t.jobs += 1;
            match o.response {
                None => t.rejected += 1,
                Some(r) => {
                    if r <= deadlines[o.tenant] {
                        t.slo_hits += 1;
                    }
                    t.response.push(r);
                    t.slowdown.push(r / o.service);
                    t.tail.push(r);
                }
            }
        }
    }

    fn merge(self, other: StreamAccum) -> Self {
        StreamAccum {
            per: self
                .per
                .into_iter()
                .zip(other.per)
                .map(|(a, b)| a.merge(b))
                .collect(),
        }
    }
}

/// Runs `spec.trials` independent replays of the stream and aggregates
/// per-tenant statistics.
///
/// Every admitted job executes the *same* `(wf, schedule)` pair — the
/// stream models repeated submissions of one workflow — but each draws
/// its own fault stream from `make_injector(spec.proc_seed(trial, job))`.
/// Both the parallel and sequential paths fold per-chunk accumulators
/// over [`rayon::fold_chunk_len`] boundaries and merge them in chunk
/// order, so the aggregate is bit-identical for any thread count.
pub fn run_tenant_trials_with<I, F>(
    wf: &Workflow,
    schedule: &Schedule,
    jobs: &[TenantJob],
    config: &TenantConfig,
    spec: TrialSpec,
    make_injector: F,
) -> Vec<TenantStats>
where
    I: FaultInjector,
    F: Fn(u64) -> I + Sync,
{
    assert_eq!(
        config.weights.len(),
        config.deadlines.len(),
        "one weight and one deadline per tenant"
    );
    assert!(
        jobs.iter().all(|j| j.tenant < config.weights.len()),
        "job tenant index out of range"
    );
    assert!(!config.speeds.is_empty(), "need at least one processor");
    let n_tenants = config.weights.len();
    let plan = TrialPlan::compile(wf, schedule);
    // Per-chunk scratch: the compiled-plan simulator arena, the service
    // buffer, the stream-replay buffers, and the accumulator itself — all
    // reused trial after trial within a chunk.
    let init = || {
        (
            TrialScratch::new(plan.n_tasks()),
            Vec::<f64>::with_capacity(jobs.len()),
            StreamScratch::new(jobs.len(), config.speeds.len(), n_tenants),
            StreamAccum::identity(n_tenants),
        )
    };
    let step = |state: &mut (TrialScratch, Vec<f64>, StreamScratch, StreamAccum), i: usize| {
        let (sim_scratch, services, stream, accum) = state;
        services.clear();
        services.extend((0..jobs.len()).map(|j| {
            let mut inj = make_injector(spec.proc_seed(i, j));
            simulate_planned(&plan, sim_scratch, &mut inj, config.downtime).makespan
        }));
        run_stream_into(jobs, config, services, stream);
        accum.push(&stream.outcomes, &config.deadlines);
    };
    let finish = |state: (TrialScratch, Vec<f64>, StreamScratch, StreamAccum)| state.3;
    let identity = || StreamAccum::identity(n_tenants);
    if spec.parallel {
        (0..spec.trials)
            .into_par_iter()
            .fold_chunk_states(init, step, finish)
            .reduce(identity, StreamAccum::merge)
            .per
    } else {
        fold_sequential_chunk_states(
            spec.trials,
            init,
            step,
            finish,
            identity,
            StreamAccum::merge,
        )
        .per
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::run_trials_with;
    use dagchkpt_core::Workflow;
    use dagchkpt_dag::{generators, topo};
    use dagchkpt_failure::{ExponentialInjector, NoFaults};

    fn fixture() -> (Workflow, Schedule) {
        let wf = Workflow::uniform(generators::chain(5), 12.0, 1.2);
        let order = topo::topological_order(wf.dag());
        let s = Schedule::always(&wf, order).unwrap();
        (wf, s)
    }

    fn config(policy: TenantPolicy, procs: usize, tenants: usize) -> TenantConfig {
        TenantConfig {
            speeds: vec![1.0; procs],
            downtime: 1.0,
            policy,
            weights: vec![1.0; tenants],
            deadlines: vec![f64::INFINITY; tenants],
        }
    }

    /// The degenerate anchor: one job arriving at t = 0 reproduces the
    /// single-tenant Monte-Carlo makespan statistics bit for bit —
    /// moments, extrema, and the tail sketch.
    #[test]
    fn single_job_stream_matches_run_trials_bitwise() {
        let (wf, s) = fixture();
        let jobs = [TenantJob {
            arrival: 0.0,
            tenant: 0,
        }];
        for spec in [TrialSpec::new(600, 11), TrialSpec::sequential(600, 11)] {
            let solo = run_trials_with(&wf, &s, 1.0, spec, |seed| {
                ExponentialInjector::new(4e-3, seed)
            });
            let multi = run_tenant_trials_with(
                &wf,
                &s,
                &jobs,
                &config(TenantPolicy::Fcfs, 1, 1),
                spec,
                |seed| ExponentialInjector::new(4e-3, seed),
            );
            assert_eq!(multi.len(), 1);
            let t = &multi[0];
            assert_eq!(t.jobs, 600);
            assert_eq!(t.rejected, 0);
            assert_eq!(t.response.n(), solo.makespan.n());
            assert_eq!(t.response.mean().to_bits(), solo.makespan.mean().to_bits());
            assert_eq!(
                t.response.stddev().to_bits(),
                solo.makespan.stddev().to_bits()
            );
            assert_eq!(t.response.min().to_bits(), solo.makespan.min().to_bits());
            assert_eq!(t.response.max().to_bits(), solo.makespan.max().to_bits());
            assert_eq!(t.tail, solo.tail);
            // No contention, unit speed: every slowdown is exactly 1.
            assert_eq!(t.slowdown.min(), 1.0);
            assert_eq!(t.slowdown.max(), 1.0);
        }
    }

    /// Fault-free queueing sanity on one processor: three simultaneous
    /// arrivals serialize, so responses are S, 2S, 3S.
    #[test]
    fn fcfs_serializes_simultaneous_arrivals() {
        let (wf, s) = fixture();
        let service = 5.0 * 12.0 + 5.0 * 1.2; // 5 tasks + 5 checkpoints
        let jobs: Vec<TenantJob> = (0..3)
            .map(|k| TenantJob {
                arrival: 0.0,
                tenant: k % 2,
            })
            .collect();
        let stats = run_tenant_trials_with(
            &wf,
            &s,
            &jobs,
            &config(TenantPolicy::Fcfs, 1, 2),
            TrialSpec::new(4, 3),
            |_| NoFaults,
        );
        // Tenant 0 got jobs 0 and 2 (responses S and 3S), tenant 1 job 1.
        assert_eq!(stats[0].jobs, 8);
        assert_eq!(stats[1].jobs, 4);
        assert!((stats[0].response.min() - service).abs() < 1e-9);
        assert!((stats[0].response.max() - 3.0 * service).abs() < 1e-9);
        assert!((stats[1].response.mean() - 2.0 * service).abs() < 1e-9);
        // Slowdowns are 1, 3 and 2 respectively.
        assert!((stats[0].slowdown.max() - 3.0).abs() < 1e-9);
        assert!((stats[1].slowdown.mean() - 2.0).abs() < 1e-9);
    }

    /// Priority admits the heavy tenant's later arrival ahead of the
    /// queue; FCFS does not.
    #[test]
    fn priority_reorders_the_queue_fcfs_does_not() {
        let (wf, s) = fixture();
        // Jobs 0,1,2 at t=0: job 0 runs immediately, 1 and 2 queue.
        let jobs = [
            TenantJob {
                arrival: 0.0,
                tenant: 0,
            },
            TenantJob {
                arrival: 0.0,
                tenant: 0,
            },
            TenantJob {
                arrival: 0.0,
                tenant: 1,
            },
        ];
        let mut cfg = config(TenantPolicy::Priority, 1, 2);
        cfg.weights = vec![1.0, 10.0];
        let pri = run_tenant_trials_with(&wf, &s, &jobs, &cfg, TrialSpec::new(2, 3), |_| NoFaults);
        cfg.policy = TenantPolicy::Fcfs;
        let fcfs = run_tenant_trials_with(&wf, &s, &jobs, &cfg, TrialSpec::new(2, 3), |_| NoFaults);
        // Under priority the heavy tenant's job jumps the queue: its
        // response is 2S instead of FCFS's 3S.
        assert!(pri[1].response.mean() < fcfs[1].response.mean());
        let service = 5.0 * 12.0 + 5.0 * 1.2;
        assert!((pri[1].response.mean() - 2.0 * service).abs() < 1e-9);
        assert!((fcfs[1].response.mean() - 3.0 * service).abs() < 1e-9);
    }

    /// Fair share alternates tenants even when one floods the queue.
    #[test]
    fn fair_share_interleaves_a_flooding_tenant() {
        let (wf, s) = fixture();
        // Tenant 0 floods with 3 jobs; tenant 1 submits one job last.
        let jobs = [
            TenantJob {
                arrival: 0.0,
                tenant: 0,
            },
            TenantJob {
                arrival: 0.0,
                tenant: 0,
            },
            TenantJob {
                arrival: 0.0,
                tenant: 0,
            },
            TenantJob {
                arrival: 0.0,
                tenant: 1,
            },
        ];
        let cfg = config(TenantPolicy::FairShare, 1, 2);
        let fair = run_tenant_trials_with(&wf, &s, &jobs, &cfg, TrialSpec::new(2, 3), |_| NoFaults);
        let service = 5.0 * 12.0 + 5.0 * 1.2;
        // Tenant 0's first job starts at 0 (share 0 vs 0, earliest wins);
        // then tenant 1 (share 0 vs 1) runs second: response 2S.
        assert!((fair[1].response.mean() - 2.0 * service).abs() < 1e-9);
    }

    /// Over-capacity rejection: one processor, queue bound 1, so the
    /// third simultaneous arrival is dropped and counts as an SLO miss.
    #[test]
    fn reject_over_capacity_drops_and_counts_misses() {
        let (wf, s) = fixture();
        let jobs: Vec<TenantJob> = (0..3)
            .map(|_| TenantJob {
                arrival: 0.0,
                tenant: 0,
            })
            .collect();
        let mut cfg = config(TenantPolicy::RejectOverCapacity, 1, 1);
        cfg.deadlines = vec![f64::INFINITY];
        let stats =
            run_tenant_trials_with(&wf, &s, &jobs, &cfg, TrialSpec::new(5, 3), |_| NoFaults);
        assert_eq!(stats[0].jobs, 15);
        assert_eq!(stats[0].rejected, 5);
        assert_eq!(stats[0].response.n(), 10);
        // Completed jobs all hit the (infinite) SLO; rejected ones miss.
        assert_eq!(stats[0].slo_hits, 10);
        assert!((stats[0].slo_rate() - 10.0 / 15.0).abs() < 1e-12);
    }

    /// The executor contract carried over: parallel and sequential paths
    /// are bit-identical, faults and all.
    #[test]
    fn parallel_and_sequential_paths_are_bit_identical() {
        let (wf, s) = fixture();
        let jobs: Vec<TenantJob> = (0..6)
            .map(|k| TenantJob {
                arrival: 20.0 * k as f64,
                tenant: k % 3,
            })
            .collect();
        let mut cfg = config(TenantPolicy::FairShare, 2, 3);
        cfg.weights = vec![3.0, 2.0, 1.0];
        cfg.deadlines = vec![200.0, 400.0, 800.0];
        let run = |spec: TrialSpec| {
            run_tenant_trials_with(&wf, &s, &jobs, &cfg, spec, |seed| {
                ExponentialInjector::new(5e-3, seed)
            })
        };
        let par = run(TrialSpec::new(1500, 77));
        let seq = run(TrialSpec::sequential(1500, 77));
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.jobs, b.jobs);
            assert_eq!(a.slo_hits, b.slo_hits);
            assert_eq!(a.response.mean().to_bits(), b.response.mean().to_bits());
            assert_eq!(a.response.stddev().to_bits(), b.response.stddev().to_bits());
            assert_eq!(a.slowdown.mean().to_bits(), b.slowdown.mean().to_bits());
            assert_eq!(a.tail, b.tail);
        }
    }
}
