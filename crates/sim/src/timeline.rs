//! ASCII timeline rendering of execution traces — a quick visual check of
//! what a failure-prone run actually did.

use crate::engine::SimResult;
use crate::events::{Event, UnitKind};
use std::fmt::Write as _;

/// Renders a recorded trace as a fixed-width strip plus an event list.
///
/// The strip maps wall-clock time onto `width` cells; each cell shows what
/// finished there most recently:
/// `w` work, `r` re-execution, `R` checkpoint recovery, `c` checkpoint
/// write, `X` fault, `·` idle/downtime. Returns a note when the result
/// carries no trace (run with `record_trace: true`).
pub fn render_timeline(result: &SimResult, width: usize) -> String {
    assert!(width >= 10, "need at least 10 columns");
    let Some(trace) = result.trace.as_deref() else {
        return "(no trace recorded — enable record_trace)\n".to_string();
    };
    let mut out = String::new();
    let span = result.makespan.max(1e-12);
    let mut strip = vec![b'.'; width];
    let cell = |at: f64| -> usize {
        (((at / span) * (width as f64 - 1.0)).round() as usize).min(width - 1)
    };
    for e in trace {
        match *e {
            Event::UnitCompleted { kind, at, .. } => {
                let ch = match kind {
                    UnitKind::Work => b'w',
                    UnitKind::Rework => b'r',
                    UnitKind::Recovery => b'R',
                    UnitKind::Checkpoint => b'c',
                };
                strip[cell(at)] = ch;
            }
            Event::Fault { at, .. } => strip[cell(at)] = b'X',
            Event::TaskDone { .. } => {}
        }
    }
    writeln!(
        out,
        "0s {}|{:.1}s",
        String::from_utf8_lossy(&strip),
        result.makespan
    )
    .expect("string write");
    writeln!(
        out,
        "   w=work r=re-execution R=recovery c=checkpoint X=fault ({} faults)",
        result.n_faults
    )
    .expect("string write");
    for e in trace {
        match *e {
            Event::Fault { at, downtime } => {
                writeln!(out, "  {at:>10.2}  fault (downtime {downtime})").expect("write");
            }
            Event::TaskDone { task, at } => {
                writeln!(out, "  {at:>10.2}  T{task} done").expect("write");
            }
            Event::UnitCompleted { .. } => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use dagchkpt_core::{Schedule, Workflow};
    use dagchkpt_dag::{generators, topo};
    use dagchkpt_failure::{NoFaults, TraceInjector};

    #[test]
    fn renders_fault_free_run() {
        let wf = Workflow::uniform(generators::chain(3), 10.0, 1.0);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let mut inj = NoFaults;
        let r = simulate(
            &wf,
            &s,
            &mut inj,
            SimConfig {
                downtime: 0.0,
                record_trace: true,
            },
        );
        let t = render_timeline(&r, 60);
        let strip = t.lines().next().unwrap();
        assert!(strip.contains('w'));
        assert!(strip.contains('c'));
        assert!(!strip.contains('X'), "{strip}");
        assert!(t.contains("T2 done"));
        assert!(t.contains("(0 faults)"));
    }

    #[test]
    fn renders_faults_and_recoveries() {
        let wf = Workflow::uniform(generators::chain(2), 10.0, 0.0);
        let s = Schedule::never(&wf, topo::topological_order(wf.dag())).unwrap();
        let mut inj = TraceInjector::new(vec![15.0]);
        let r = simulate(
            &wf,
            &s,
            &mut inj,
            SimConfig {
                downtime: 0.0,
                record_trace: true,
            },
        );
        let t = render_timeline(&r, 40);
        let strip = t.lines().next().unwrap();
        assert!(strip.contains('X'), "{t}");
        assert!(strip.contains('r'), "{t}");
        assert!(t.contains("fault (downtime 0)"));
    }

    #[test]
    fn no_trace_notice() {
        let wf = Workflow::uniform(generators::chain(1), 1.0, 0.0);
        let s = Schedule::never(&wf, topo::topological_order(wf.dag())).unwrap();
        let mut inj = NoFaults;
        let r = simulate(&wf, &s, &mut inj, SimConfig::default());
        assert!(render_timeline(&r, 40).contains("no trace"));
    }
}
