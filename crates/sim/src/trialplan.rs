//! Compiled trial plans and per-worker scratch arenas: the zero-allocation
//! Monte-Carlo fast path.
//!
//! [`TrialPlan::compile`] flattens one (workflow × schedule) cell into
//! contiguous, index-addressed arrays — the schedule order, the position
//! permutation, the checkpoint set, a CSR predecessor table, and per-task
//! work / checkpoint / recovery costs — compiled **once per cell** and
//! shared read-only by every worker thread. [`TrialScratch`] holds the
//! per-worker mutable state (residency bitset, epoch-marked DFS buffers,
//! the recovery-step buffer that replaces [`crate::plan::recovery_plan`]'s
//! fresh `Vec` per fault, and the non-blocking engine's write queue), so a
//! steady-state trial performs **zero heap allocations**: the executor
//! creates one scratch per fold chunk (`O(chunks)` allocations per run,
//! never `O(trials)`).
//!
//! [`simulate_planned`] is the fast twin of [`crate::engine::simulate`]:
//! same arithmetic in the same order, so its results are **bit-identical**
//! to the reference engine (pinned by the differential tests below); the
//! reference stays in `engine.rs` both as executable documentation and as
//! the "before" baseline of `benches/mc_fastpath.rs`.

use crate::events::UnitKind;
use crate::plan::PlanStep;
use dagchkpt_core::{Schedule, Workflow};
use dagchkpt_dag::{FixedBitSet, NodeId};
use dagchkpt_failure::FaultInjector;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global count of [`TrialPlan::compile`] calls — the allocation-regression
/// suite pins this at one per cell, proving plans are shared, not rebuilt.
static COMPILES: AtomicU64 = AtomicU64::new(0);

/// Number of trial plans compiled so far in this process (test hook).
#[doc(hidden)]
pub fn plan_compile_count() -> u64 {
    COMPILES.load(Ordering::Relaxed)
}

/// One (workflow × schedule × costs) cell, flattened into contiguous
/// arrays at setup time and shared read-only by all trial workers.
///
/// Storage-tier pricing needs no special handling: callers compile the
/// plan from the already-scaled workflow copy, so the cost arrays carry
/// the tier prices.
#[derive(Debug, Clone)]
pub struct TrialPlan {
    /// Task count.
    pub(crate) n: usize,
    /// Schedule order (a linearization).
    pub(crate) order: Vec<NodeId>,
    /// Position of each task id in `order` (a permutation of `0..n`).
    pub(crate) positions: Vec<u32>,
    /// `w_i` per task id.
    pub(crate) work: Vec<f64>,
    /// `c_i` per task id (whether checkpointed or not).
    pub(crate) ckpt_cost: Vec<f64>,
    /// `r_i` per task id.
    pub(crate) rec_cost: Vec<f64>,
    /// `c_i` when task `i` is checkpointed, else `0.0` — exactly the
    /// engine's per-block checkpoint branch, precomputed.
    pub(crate) block_ckpt: Vec<f64>,
    /// The schedule's checkpoint set.
    pub(crate) checkpointed: FixedBitSet,
    /// CSR offsets into `pred_ids`; `n + 1` entries.
    pred_offsets: Vec<u32>,
    /// Concatenated predecessor lists, preserving `Dag::preds` order.
    pred_ids: Vec<NodeId>,
}

impl TrialPlan {
    /// Flattens `(wf, schedule)` into the index-addressed arrays above.
    pub fn compile(wf: &Workflow, schedule: &Schedule) -> TrialPlan {
        COMPILES.fetch_add(1, Ordering::Relaxed);
        let n = wf.n_tasks();
        let order = schedule.order().to_vec();
        let mut positions = vec![0u32; n];
        for (i, v) in order.iter().enumerate() {
            positions[v.index()] = i as u32;
        }
        let checkpointed = schedule.checkpoints().clone();
        let work = wf.works().to_vec();
        let ckpt_cost = wf.checkpoint_costs().to_vec();
        let rec_cost = wf.recovery_costs().to_vec();
        let block_ckpt = (0..n)
            .map(|i| {
                if checkpointed.contains(i) {
                    ckpt_cost[i]
                } else {
                    0.0
                }
            })
            .collect();
        let dag = wf.dag();
        let mut pred_offsets = Vec::with_capacity(n + 1);
        let mut pred_ids = Vec::new();
        pred_offsets.push(0u32);
        for i in 0..n {
            pred_ids.extend_from_slice(dag.preds(NodeId(i as u32)));
            pred_offsets.push(pred_ids.len() as u32);
        }
        TrialPlan {
            n,
            order,
            positions,
            work,
            ckpt_cost,
            rec_cost,
            block_ckpt,
            checkpointed,
            pred_offsets,
            pred_ids,
        }
    }

    /// Task count.
    pub fn n_tasks(&self) -> usize {
        self.n
    }

    /// The schedule's checkpoint set (blocking engines recover from it).
    pub fn checkpoints(&self) -> &FixedBitSet {
        &self.checkpointed
    }

    /// Predecessors of `v`, in `Dag::preds` order.
    #[inline]
    pub(crate) fn preds(&self, v: NodeId) -> &[NodeId] {
        let lo = self.pred_offsets[v.index()] as usize;
        let hi = self.pred_offsets[v.index() + 1] as usize;
        &self.pred_ids[lo..hi]
    }

    /// Fills `rec.steps` with the recovery plan for `target` given the
    /// current residency `memory` and the durably-`recoverable` set —
    /// bitwise-equal to [`crate::plan::recovery_plan_with`] without its
    /// four per-call allocations: the DFS `seen` marks are epoch-stamped
    /// (`O(1)` reset), and `positions` is a permutation (all keys
    /// distinct), so the unstable sort reproduces the stable order
    /// without the stable sort's scratch allocation.
    pub(crate) fn fill_recovery(
        &self,
        rec: &mut RecoveryScratch,
        recoverable: &FixedBitSet,
        memory: &FixedBitSet,
        target: NodeId,
    ) {
        rec.epoch += 1;
        let epoch = rec.epoch;
        rec.needed.clear();
        rec.stack.clear();
        rec.stack.push(target);
        while let Some(t) = rec.stack.pop() {
            for &p in self.preds(t) {
                let pi = p.index();
                if rec.seen[pi] == epoch || memory.contains(pi) {
                    continue;
                }
                rec.seen[pi] = epoch;
                rec.needed.push(p);
                if !recoverable.contains(pi) {
                    // Re-executing p needs p's own inputs restored too.
                    rec.stack.push(p);
                }
            }
        }
        let positions = &self.positions;
        rec.needed.sort_unstable_by_key(|v| positions[v.index()]);
        rec.steps.clear();
        for &v in &rec.needed {
            rec.steps.push(if recoverable.contains(v.index()) {
                PlanStep {
                    task: v,
                    kind: UnitKind::Recovery,
                    duration: self.rec_cost[v.index()],
                }
            } else {
                PlanStep {
                    task: v,
                    kind: UnitKind::Rework,
                    duration: self.work[v.index()],
                }
            });
        }
    }
}

/// Reusable buffers for one recovery-plan computation: the epoch-marked
/// DFS state plus the step buffer that replaces the fresh `Vec<PlanStep>`
/// per fault. Every buffer is sized so steady-state fills never
/// reallocate (each task enters `stack`/`needed`/`steps` at most once).
#[derive(Debug, Clone)]
pub struct RecoveryScratch {
    /// `seen[v] == epoch` marks v as visited in the current fill.
    seen: Vec<u64>,
    /// Current fill's epoch stamp.
    epoch: u64,
    /// DFS work stack.
    stack: Vec<NodeId>,
    /// Tasks to restore, pre-sort.
    needed: Vec<NodeId>,
    /// The computed plan, in schedule order.
    pub(crate) steps: Vec<PlanStep>,
}

impl RecoveryScratch {
    fn new(n: usize) -> Self {
        RecoveryScratch {
            seen: vec![0; n],
            epoch: 0,
            stack: Vec::with_capacity(n + 1),
            needed: Vec::with_capacity(n),
            steps: Vec::with_capacity(n),
        }
    }
}

/// Per-worker scratch arena: every mutable buffer a trial needs, created
/// once per fold chunk by the executor's chunk-scoped init and reused for
/// all of the chunk's trials.
#[derive(Debug, Clone)]
pub struct TrialScratch {
    /// Residency bitset (volatile memory).
    pub(crate) memory: FixedBitSet,
    /// Recovery-plan buffers.
    pub(crate) recovery: RecoveryScratch,
    /// Non-blocking engine: checkpoints durably on stable storage.
    pub(crate) durable: FixedBitSet,
    /// Non-blocking engine: in-flight checkpoint writes (task, remaining).
    pub(crate) writes: VecDeque<(NodeId, f64)>,
}

impl TrialScratch {
    /// Scratch for an `n`-task plan.
    pub fn new(n: usize) -> Self {
        TrialScratch {
            memory: FixedBitSet::new(n),
            recovery: RecoveryScratch::new(n),
            durable: FixedBitSet::new(n),
            writes: VecDeque::with_capacity(n),
        }
    }
}

/// Aggregate of one planned trial: [`crate::SimResult`] minus the trace
/// machinery, `Copy` so chunk buffers hold it inline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannedResult {
    /// Total wall-clock time.
    pub makespan: f64,
    /// Number of faults that struck.
    pub n_faults: u64,
    /// Work units run to completion.
    pub time_work: f64,
    /// Re-executed non-checkpointed ancestors.
    pub time_rework: f64,
    /// Recovered checkpointed outputs.
    pub time_recovery: f64,
    /// Successful checkpoint writes.
    pub time_checkpoint: f64,
    /// Partial unit time lost to faults.
    pub time_wasted: f64,
    /// Total downtime.
    pub time_downtime: f64,
}

impl PlannedResult {
    /// The accounting identity: all buckets sum to the makespan.
    pub fn accounted_time(&self) -> f64 {
        self.time_work
            + self.time_rework
            + self.time_recovery
            + self.time_checkpoint
            + self.time_wasted
            + self.time_downtime
    }
}

/// The zero-allocation twin of [`crate::engine::simulate`]: same blocking
/// execution model, same floating-point operations in the same order —
/// bit-identical results — but reading the compiled `plan` instead of
/// traversing the graph, reusing `scratch` instead of allocating, and
/// carrying no trace machinery at all (the no-trace path is
/// allocation-free by construction).
pub fn simulate_planned(
    plan: &TrialPlan,
    scratch: &mut TrialScratch,
    injector: &mut dyn FaultInjector,
    downtime: f64,
) -> PlannedResult {
    scratch.memory.clear();
    let mut t = 0.0f64;
    let mut next_fault = injector.next_fault_after(0.0);
    let mut res = PlannedResult::default();

    // Executes one unit; returns false when a fault struck (memory wiped,
    // downtime paid, next fault rescheduled).
    let mut run_unit = |t: &mut f64,
                        next_fault: &mut f64,
                        memory: &mut FixedBitSet,
                        res: &mut PlannedResult,
                        duration: f64|
     -> bool {
        if *next_fault >= *t + duration {
            *t += duration;
            true
        } else {
            res.time_wasted += *next_fault - *t;
            *t = *next_fault;
            res.n_faults += 1;
            memory.clear();
            *t += downtime;
            res.time_downtime += downtime;
            *next_fault = injector.next_fault_after(*t);
            false
        }
    };

    for idx in 0..plan.n {
        let task = plan.order[idx];
        let w = plan.work[task.index()];
        let c = plan.block_ckpt[task.index()];
        // The X_i block: retry until the plan, the work, and the optional
        // checkpoint all complete without a fault interrupting.
        'block: loop {
            plan.fill_recovery(
                &mut scratch.recovery,
                &plan.checkpointed,
                &scratch.memory,
                task,
            );
            for si in 0..scratch.recovery.steps.len() {
                let step = scratch.recovery.steps[si];
                if !run_unit(
                    &mut t,
                    &mut next_fault,
                    &mut scratch.memory,
                    &mut res,
                    step.duration,
                ) {
                    continue 'block;
                }
                match step.kind {
                    UnitKind::Recovery => res.time_recovery += step.duration,
                    UnitKind::Rework => res.time_rework += step.duration,
                    _ => unreachable!("plans only recover or re-execute"),
                }
                scratch.memory.insert(step.task.index());
            }
            if !run_unit(&mut t, &mut next_fault, &mut scratch.memory, &mut res, w) {
                continue 'block;
            }
            res.time_work += w;
            scratch.memory.insert(task.index());
            if c > 0.0 {
                if !run_unit(&mut t, &mut next_fault, &mut scratch.memory, &mut res, c) {
                    continue 'block;
                }
                res.time_checkpoint += c;
            }
            break 'block;
        }
    }

    res.makespan = t;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::memory::MemoryState;
    use crate::plan::recovery_plan;
    use dagchkpt_core::CostRule;
    use dagchkpt_dag::{generators, topo};
    use dagchkpt_failure::{ExponentialInjector, NoFaults, TraceInjector};

    /// Differential harness: the planned engine is bit-identical to the
    /// reference engine for every fixture under seeded exponential faults.
    #[test]
    fn planned_engine_is_bit_identical_to_reference() {
        for (wf, s) in fixture_cases() {
            let plan = TrialPlan::compile(&wf, &s);
            let mut scratch = TrialScratch::new(plan.n_tasks());
            for seed in 0..64u64 {
                let mut inj_ref = ExponentialInjector::new(8e-3, seed);
                let reference = simulate(
                    &wf,
                    &s,
                    &mut inj_ref,
                    SimConfig {
                        downtime: 1.5,
                        record_trace: false,
                    },
                );
                let mut inj_fast = ExponentialInjector::new(8e-3, seed);
                let fast = simulate_planned(&plan, &mut scratch, &mut inj_fast, 1.5);
                assert_eq!(reference.makespan.to_bits(), fast.makespan.to_bits());
                assert_eq!(reference.n_faults, fast.n_faults);
                for (a, b) in [
                    (reference.time_work, fast.time_work),
                    (reference.time_rework, fast.time_rework),
                    (reference.time_recovery, fast.time_recovery),
                    (reference.time_checkpoint, fast.time_checkpoint),
                    (reference.time_wasted, fast.time_wasted),
                    (reference.time_downtime, fast.time_downtime),
                ] {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    fn fixture_cases() -> Vec<(Workflow, Schedule)> {
        let mut out = Vec::new();
        for (dag, every) in [
            (generators::paper_figure1(), 2usize),
            (generators::chain(17), 3),
            (generators::grid(4, 5), 1),
            (generators::fork_join(6), 4),
        ] {
            let n = dag.n_nodes();
            let works: Vec<f64> = (0..n).map(|i| 5.0 + (i as f64 * 1.7) % 11.0).collect();
            let wf =
                Workflow::with_cost_rule(dag, works, CostRule::ProportionalToWork { ratio: 0.1 });
            let order = topo::topological_order(wf.dag());
            let ckpt =
                dagchkpt_dag::FixedBitSet::from_indices(n, (0..n).filter(|i| i % every == 0));
            let s = Schedule::new(&wf, order, ckpt).unwrap();
            out.push((wf, s));
        }
        out
    }

    /// The paper's Figure-1 walkthrough (fault at t = 55 during T5) lands
    /// on the same makespan 107 as the reference engine's pinned test.
    #[test]
    fn paper_figure1_walkthrough_on_the_fast_path() {
        let costs: Vec<dagchkpt_core::TaskCosts> = (0..8)
            .map(|i| {
                if i == 3 || i == 4 {
                    dagchkpt_core::TaskCosts::new(10.0, 1.0, 1.0)
                } else {
                    dagchkpt_core::TaskCosts::new(10.0, 0.0, 0.0)
                }
            })
            .collect();
        let wf = Workflow::new(generators::paper_figure1(), costs);
        let order: Vec<NodeId> = [0u32, 3, 1, 2, 4, 5, 6, 7]
            .iter()
            .map(|&i| NodeId(i))
            .collect();
        let mut ckpt = FixedBitSet::new(8);
        ckpt.insert(3);
        ckpt.insert(4);
        let s = Schedule::new(&wf, order, ckpt).unwrap();
        let plan = TrialPlan::compile(&wf, &s);
        let mut scratch = TrialScratch::new(8);
        let mut inj = TraceInjector::new(vec![55.0]);
        let r = simulate_planned(&plan, &mut scratch, &mut inj, 0.0);
        assert!(
            (r.makespan - 107.0).abs() < 1e-12,
            "makespan {}",
            r.makespan
        );
        assert_eq!(r.n_faults, 1);
        assert!((r.time_recovery - 2.0).abs() < 1e-12);
        assert!((r.time_rework - 20.0).abs() < 1e-12);
        assert!((r.accounted_time() - r.makespan).abs() < 1e-9);
    }

    /// `fill_recovery` reproduces `recovery_plan` exactly — steps, kinds,
    /// durations, order — for every (memory, target) combination of the
    /// fixtures, and a scratch reused across fills stays exact.
    #[test]
    fn fill_recovery_matches_recovery_plan() {
        for (wf, s) in fixture_cases() {
            let plan = TrialPlan::compile(&wf, &s);
            let n = plan.n_tasks();
            let mut scratch = TrialScratch::new(n);
            for target in 0..n {
                for mem_pattern in 0..4u64 {
                    let mut mem = MemoryState::new(n);
                    let mut mem_bits = FixedBitSet::new(n);
                    for v in 0..n {
                        if v != target && (v as u64 + mem_pattern).is_multiple_of(3) {
                            mem.store(NodeId(v as u32));
                            mem_bits.insert(v);
                        }
                    }
                    let reference = recovery_plan(&wf, &s, &mem, NodeId(target as u32));
                    plan.fill_recovery(
                        &mut scratch.recovery,
                        plan.checkpoints(),
                        &mem_bits,
                        NodeId(target as u32),
                    );
                    assert_eq!(reference, scratch.recovery.steps, "target {target}");
                }
            }
        }
    }

    /// Scratch reuse across trials leaks no state: interleaving trials
    /// through one scratch matches fresh-scratch runs bit for bit.
    #[test]
    fn scratch_reuse_across_trials_is_stateless() {
        let (wf, s) = fixture_cases().remove(2);
        let plan = TrialPlan::compile(&wf, &s);
        let mut shared = TrialScratch::new(plan.n_tasks());
        for seed in [3u64, 99, 4096] {
            let mut inj = ExponentialInjector::new(2e-2, seed);
            let reused = simulate_planned(&plan, &mut shared, &mut inj, 2.0);
            let mut fresh_scratch = TrialScratch::new(plan.n_tasks());
            let mut inj = ExponentialInjector::new(2e-2, seed);
            let fresh = simulate_planned(&plan, &mut fresh_scratch, &mut inj, 2.0);
            assert_eq!(reused.makespan.to_bits(), fresh.makespan.to_bits());
            assert_eq!(reused.n_faults, fresh.n_faults);
        }
    }

    /// Fault-free run: pure work plus checkpoints, no recovery machinery.
    #[test]
    fn fault_free_planned_run_matches_totals() {
        let wf = Workflow::uniform(generators::fork_join(4), 10.0, 1.0);
        let order = topo::topological_order(wf.dag());
        let s = Schedule::always(&wf, order).unwrap();
        let plan = TrialPlan::compile(&wf, &s);
        let mut scratch = TrialScratch::new(plan.n_tasks());
        let mut inj = NoFaults;
        let r = simulate_planned(&plan, &mut scratch, &mut inj, 0.0);
        assert!((r.makespan - 66.0).abs() < 1e-9); // 6·10 + 6·1
        assert_eq!(r.n_faults, 0);
        assert_eq!(r.time_rework, 0.0);
        assert_eq!(r.time_recovery, 0.0);
    }

    /// The compile counter moves exactly once per `compile` call.
    #[test]
    fn compile_counter_counts_compiles() {
        let (wf, s) = fixture_cases().remove(0);
        let before = plan_compile_count();
        let _p1 = TrialPlan::compile(&wf, &s);
        let _p2 = TrialPlan::compile(&wf, &s);
        assert_eq!(plan_compile_count() - before, 2);
    }
}
