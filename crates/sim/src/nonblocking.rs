//! Non-blocking checkpointing — the paper's Section-7 "future direction",
//! implemented operationally in the simulator.
//!
//! # Model
//!
//! When a checkpointed task finishes its work, the write of its checkpoint
//! (duration `c_i` of wall-clock time) proceeds **concurrently** with
//! subsequent computation; while at least one write is in flight,
//! computation progresses at rate `compute_rate` `∈ (0, 1]` (the
//! interference factor). Writes serialize in FIFO order. A checkpoint
//! becomes *durable* — usable for recovery — only when its write
//! completes:
//!
//! * a fault wipes memory **and** kills every in-flight/queued write
//!   (already-durable checkpoints survive);
//! * recovery plans may only recover durable checkpoints; a task whose
//!   write was lost is re-executed like a non-checkpointed one, and its
//!   write is re-enqueued after the re-execution;
//! * the makespan is the completion of the last task's work; writes still
//!   pending then are discarded (they can no longer help anyone).
//!
//! Accounting keeps the blocking engine's identity
//! `makespan = work + rework + recovery + checkpoint + wasted + downtime`
//! by attributing the *interference stretch* of overlapped computation
//! (wall time beyond the unit's nominal duration) to the `checkpoint`
//! bucket; the hidden portion of write time costs nothing.
//!
//! With `compute_rate = 1` and rare faults this strictly hides checkpoint
//! costs; the `nonblocking` experiment binary quantifies the trade-off
//! space against the blocking engine (interference vs. the delayed
//! durability window that faults can exploit).

use crate::engine::SimResult;
use crate::events::{Event, UnitKind};
use crate::memory::MemoryState;
use crate::montecarlo::{planned_metric_tail_stats, TrialSpec};
use crate::plan::recovery_plan_with;
use crate::quantile::QuantileSketch;
use crate::stats::Stats;
use crate::trialplan::{PlannedResult, TrialPlan, TrialScratch};
use dagchkpt_core::{Schedule, Workflow};
use dagchkpt_dag::{FixedBitSet, NodeId};
use dagchkpt_failure::FaultInjector;
use std::collections::VecDeque;

/// Configuration of the non-blocking engine.
#[derive(Debug, Clone, Copy)]
pub struct NonBlockingConfig {
    /// Downtime `D` after each fault.
    pub downtime: f64,
    /// Computation speed while a write is in flight (`0 < rate ≤ 1`;
    /// `1` = interference-free overlap).
    pub compute_rate: f64,
    /// Record the event trace.
    pub record_trace: bool,
}

impl Default for NonBlockingConfig {
    fn default() -> Self {
        NonBlockingConfig {
            downtime: 0.0,
            compute_rate: 1.0,
            record_trace: false,
        }
    }
}

struct State<'a> {
    t: f64,
    next_fault: f64,
    memory: MemoryState,
    durable: FixedBitSet,
    writes: VecDeque<(NodeId, f64)>,
    res: SimResult,
    injector: &'a mut dyn FaultInjector,
    cfg: NonBlockingConfig,
}

impl State<'_> {
    /// Handles a fault at `self.next_fault`: wastes the partial wall time
    /// since `start`, wipes memory and in-flight writes, pays downtime.
    fn fault(&mut self, start: f64) {
        self.res.time_wasted += self.next_fault - start;
        self.t = self.next_fault;
        self.res.n_faults += 1;
        self.memory.wipe();
        self.writes.clear();
        if let Some(tr) = self.res.trace.as_mut() {
            tr.push(Event::Fault {
                at: self.t,
                downtime: self.cfg.downtime,
            });
        }
        self.t += self.cfg.downtime;
        self.res.time_downtime += self.cfg.downtime;
        self.next_fault = self.injector.next_fault_after(self.t);
    }

    /// Runs `d` seconds of computation, draining writes concurrently.
    /// Returns `false` on fault. On success, nominal duration `d` is
    /// charged to `kind`'s bucket and the stretch to the checkpoint bucket.
    fn run_compute(&mut self, d: f64, kind: UnitKind) -> bool {
        let start = self.t;
        let mut left = d;
        while left > 0.0 {
            let rate = if self.writes.is_empty() {
                1.0
            } else {
                self.cfg.compute_rate
            };
            // Wall time until the compute unit finishes at this rate, or
            // the front write completes, whichever first.
            let to_unit = left / rate;
            let step = match self.writes.front() {
                Some(&(_, w_rem)) if w_rem < to_unit => w_rem,
                _ => to_unit,
            };
            if self.next_fault < self.t + step {
                self.fault(start);
                return false;
            }
            self.t += step;
            left -= step * rate;
            self.drain_writes(step);
        }
        let wall = self.t - start;
        self.charge(kind, d);
        self.res.time_checkpoint += wall - d; // interference stretch
        true
    }

    /// Advances every front-of-queue write by elapsed wall time `step`,
    /// marking completions durable. (Writes serialize: only the front
    /// write progresses.) Writes with no remaining duration complete even
    /// when `step == 0` — otherwise a zero-cost checkpoint would yield a
    /// zero-length compute step that never drains it (an infinite loop the
    /// scenario differential tests caught).
    fn drain_writes(&mut self, step: f64) {
        let mut left = step;
        while let Some(front) = self.writes.front_mut() {
            if front.1 > left {
                front.1 -= left;
                break;
            }
            left -= front.1;
            let (task, _) = self.writes.pop_front().expect("front exists");
            self.durable.insert(task.index());
            if let Some(tr) = self.res.trace.as_mut() {
                tr.push(Event::UnitCompleted {
                    task,
                    kind: UnitKind::Checkpoint,
                    at: self.t - left,
                });
            }
        }
    }

    fn charge(&mut self, kind: UnitKind, d: f64) {
        match kind {
            UnitKind::Work => self.res.time_work += d,
            UnitKind::Rework => self.res.time_rework += d,
            UnitKind::Recovery => self.res.time_recovery += d,
            UnitKind::Checkpoint => self.res.time_checkpoint += d,
        }
    }
}

/// Simulates `schedule` once with non-blocking checkpoint writes.
pub fn simulate_nonblocking(
    wf: &Workflow,
    schedule: &Schedule,
    injector: &mut dyn FaultInjector,
    cfg: NonBlockingConfig,
) -> SimResult {
    assert!(
        cfg.compute_rate > 0.0 && cfg.compute_rate <= 1.0,
        "compute_rate must be in (0, 1]"
    );
    let n = wf.n_tasks();
    let positions = schedule.positions();
    let next_fault = injector.next_fault_after(0.0);
    let mut st = State {
        t: 0.0,
        next_fault,
        memory: MemoryState::new(n),
        durable: FixedBitSet::new(n),
        writes: VecDeque::new(),
        res: SimResult {
            makespan: 0.0,
            n_faults: 0,
            time_work: 0.0,
            time_rework: 0.0,
            time_recovery: 0.0,
            time_checkpoint: 0.0,
            time_wasted: 0.0,
            time_downtime: 0.0,
            trace: cfg.record_trace.then(Vec::new),
        },
        injector,
        cfg,
    };

    for &task in schedule.order() {
        let w = wf.work(task);
        'block: loop {
            let plan = recovery_plan_with(wf, &positions, &st.durable, &st.memory, task);
            for step in &plan {
                if !st.run_compute(step.duration, step.kind) {
                    continue 'block;
                }
                st.memory.store(step.task);
                if let Some(tr) = st.res.trace.as_mut() {
                    tr.push(Event::UnitCompleted {
                        task: step.task,
                        kind: step.kind,
                        at: st.t,
                    });
                }
                // A re-executed task that the schedule wants checkpointed
                // lost its write in some earlier fault: re-enqueue it.
                if step.kind == UnitKind::Rework
                    && schedule.is_checkpointed(step.task)
                    && !st.durable.contains(step.task.index())
                {
                    st.writes
                        .push_back((step.task, wf.checkpoint_cost(step.task)));
                }
            }
            if !st.run_compute(w, UnitKind::Work) {
                continue 'block;
            }
            st.memory.store(task);
            if let Some(tr) = st.res.trace.as_mut() {
                tr.push(Event::UnitCompleted {
                    task,
                    kind: UnitKind::Work,
                    at: st.t,
                });
                tr.push(Event::TaskDone { task, at: st.t });
            }
            if schedule.is_checkpointed(task) {
                st.writes.push_back((task, wf.checkpoint_cost(task)));
            }
            break 'block;
        }
    }

    // Pending writes are discarded: the application is complete.
    st.res.makespan = st.t;
    st.res
}

/// Allocation-free twin of [`State`]: the bit set, write queue and result
/// live in a caller-owned [`TrialScratch`], borrowed for one trial.
struct PlannedNbState<'a> {
    t: f64,
    next_fault: f64,
    memory: &'a mut FixedBitSet,
    durable: &'a mut FixedBitSet,
    writes: &'a mut VecDeque<(NodeId, f64)>,
    res: PlannedResult,
    injector: &'a mut dyn FaultInjector,
    downtime: f64,
    compute_rate: f64,
}

impl PlannedNbState<'_> {
    fn fault(&mut self, start: f64) {
        self.res.time_wasted += self.next_fault - start;
        self.t = self.next_fault;
        self.res.n_faults += 1;
        self.memory.clear();
        self.writes.clear();
        self.t += self.downtime;
        self.res.time_downtime += self.downtime;
        self.next_fault = self.injector.next_fault_after(self.t);
    }

    fn run_compute(&mut self, d: f64, kind: UnitKind) -> bool {
        let start = self.t;
        let mut left = d;
        while left > 0.0 {
            let rate = if self.writes.is_empty() {
                1.0
            } else {
                self.compute_rate
            };
            let to_unit = left / rate;
            let step = match self.writes.front() {
                Some(&(_, w_rem)) if w_rem < to_unit => w_rem,
                _ => to_unit,
            };
            if self.next_fault < self.t + step {
                self.fault(start);
                return false;
            }
            self.t += step;
            left -= step * rate;
            self.drain_writes(step);
        }
        let wall = self.t - start;
        self.charge(kind, d);
        self.res.time_checkpoint += wall - d; // interference stretch
        true
    }

    fn drain_writes(&mut self, step: f64) {
        let mut left = step;
        while let Some(front) = self.writes.front_mut() {
            if front.1 > left {
                front.1 -= left;
                break;
            }
            left -= front.1;
            let (task, _) = self.writes.pop_front().expect("front exists");
            self.durable.insert(task.index());
        }
    }

    fn charge(&mut self, kind: UnitKind, d: f64) {
        match kind {
            UnitKind::Work => self.res.time_work += d,
            UnitKind::Rework => self.res.time_rework += d,
            UnitKind::Recovery => self.res.time_recovery += d,
            UnitKind::Checkpoint => self.res.time_checkpoint += d,
        }
    }
}

/// Simulates one non-blocking trial on a compiled [`TrialPlan`], reusing
/// `scratch` so the steady state performs no heap allocations. Bit-identical
/// to [`simulate_nonblocking`] without a trace (pinned by a differential
/// test below).
pub fn simulate_nonblocking_planned(
    plan: &TrialPlan,
    scratch: &mut TrialScratch,
    injector: &mut dyn FaultInjector,
    cfg: NonBlockingConfig,
) -> PlannedResult {
    assert!(
        cfg.compute_rate > 0.0 && cfg.compute_rate <= 1.0,
        "compute_rate must be in (0, 1]"
    );
    let TrialScratch {
        memory,
        recovery,
        durable,
        writes,
    } = scratch;
    memory.clear();
    durable.clear();
    writes.clear();
    let next_fault = injector.next_fault_after(0.0);
    let mut st = PlannedNbState {
        t: 0.0,
        next_fault,
        memory,
        durable,
        writes,
        res: PlannedResult::default(),
        injector,
        downtime: cfg.downtime,
        compute_rate: cfg.compute_rate,
    };

    for idx in 0..plan.n_tasks() {
        let task = plan.order[idx];
        let w = plan.work[task.index()];
        'block: loop {
            plan.fill_recovery(recovery, &*st.durable, &*st.memory, task);
            let mut completed = true;
            for si in 0..recovery.steps.len() {
                let step = recovery.steps[si];
                if !st.run_compute(step.duration, step.kind) {
                    completed = false;
                    break;
                }
                st.memory.insert(step.task.index());
                // A re-executed task that the schedule wants checkpointed
                // lost its write in some earlier fault: re-enqueue it.
                if step.kind == UnitKind::Rework
                    && plan.checkpointed.contains(step.task.index())
                    && !st.durable.contains(step.task.index())
                {
                    st.writes
                        .push_back((step.task, plan.ckpt_cost[step.task.index()]));
                }
            }
            if !completed {
                continue 'block;
            }
            if !st.run_compute(w, UnitKind::Work) {
                continue 'block;
            }
            st.memory.insert(task.index());
            if plan.checkpointed.contains(task.index()) {
                st.writes.push_back((task, plan.ckpt_cost[task.index()]));
            }
            break 'block;
        }
    }

    st.res.makespan = st.t;
    st.res
}

/// Monte-Carlo campaign over the non-blocking engine on the zero-allocation
/// fast path: one compiled plan shared by every worker, one scratch arena
/// per fold chunk. Returns makespan statistics and a tail sketch, bit-for-bit
/// what the reference engine produces under any `RAYON_NUM_THREADS`.
pub fn run_nonblocking_trials_with<I, F>(
    wf: &Workflow,
    schedule: &Schedule,
    cfg: NonBlockingConfig,
    spec: TrialSpec,
    make_injector: F,
) -> (Stats, QuantileSketch)
where
    I: FaultInjector,
    F: Fn(u64) -> I + Sync,
{
    let plan = TrialPlan::compile(wf, schedule);
    planned_metric_tail_stats(
        spec,
        || TrialScratch::new(plan.n_tasks()),
        |scratch, i| {
            let mut inj = make_injector(spec.trial_seed(i));
            simulate_nonblocking_planned(&plan, scratch, &mut inj, cfg).makespan
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use dagchkpt_core::TaskCosts;
    use dagchkpt_dag::{generators, topo};
    use dagchkpt_failure::{ExponentialInjector, NoFaults, TraceInjector};

    fn two_chain(c0: f64) -> (Workflow, Schedule) {
        let costs = vec![
            TaskCosts::new(10.0, c0, 2.0),
            TaskCosts::new(10.0, 0.0, 0.0),
        ];
        let wf = Workflow::new(generators::chain(2), costs);
        let mut ckpt = FixedBitSet::new(2);
        ckpt.insert(0);
        let s = Schedule::new(&wf, topo::topological_order(wf.dag()), ckpt).unwrap();
        (wf, s)
    }

    #[test]
    fn fault_free_full_overlap_hides_checkpoints() {
        let (wf, s) = two_chain(4.0);
        let mut inj = NoFaults;
        let r = simulate_nonblocking(&wf, &s, &mut inj, NonBlockingConfig::default());
        assert_eq!(r.makespan, 20.0); // c fully hidden
        assert_eq!(r.time_checkpoint, 0.0); // no interference at rate 1
        let mut inj = NoFaults;
        let blocking = simulate(&wf, &s, &mut inj, SimConfig::default());
        assert_eq!(blocking.makespan, 24.0);
    }

    #[test]
    fn interference_stretches_overlapped_compute() {
        // T1 runs at rate 0.5 while T0's 4-second write drains: 4 s wall
        // yield 2 s of work, then 8 s at full speed: 10 + 4 + 8 = 22.
        let (wf, s) = two_chain(4.0);
        let mut inj = NoFaults;
        let cfg = NonBlockingConfig {
            compute_rate: 0.5,
            ..Default::default()
        };
        let r = simulate_nonblocking(&wf, &s, &mut inj, cfg);
        assert!((r.makespan - 22.0).abs() < 1e-12, "makespan {}", r.makespan);
        // Nominal buckets: 20 work + 2 interference.
        assert!((r.time_work - 20.0).abs() < 1e-12);
        assert!((r.time_checkpoint - 2.0).abs() < 1e-12);
        assert!((r.accounted_time() - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn fault_kills_inflight_write_and_reenqueues_after_rework() {
        // Write of T0 (5 s) starts at t = 10; fault at t = 12 while T1 runs.
        // T0 is NOT durable ⇒ re-execute T0 (10 s), re-enqueue its write,
        // then T1 (10 s) overlapping the write at rate 1: done at 32.
        let costs = vec![
            TaskCosts::new(10.0, 5.0, 2.0),
            TaskCosts::new(10.0, 0.0, 0.0),
        ];
        let wf = Workflow::new(generators::chain(2), costs);
        let mut ckpt = FixedBitSet::new(2);
        ckpt.insert(0);
        let s = Schedule::new(&wf, topo::topological_order(wf.dag()), ckpt).unwrap();
        let mut inj = TraceInjector::new(vec![12.0]);
        let r = simulate_nonblocking(&wf, &s, &mut inj, NonBlockingConfig::default());
        assert!((r.makespan - 32.0).abs() < 1e-12, "makespan {}", r.makespan);
        assert!((r.time_rework - 10.0).abs() < 1e-12);
        assert_eq!(r.time_recovery, 0.0);
        assert!((r.time_wasted - 2.0).abs() < 1e-12);
        assert!((r.accounted_time() - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn durable_checkpoint_is_recovered_not_reexecuted() {
        // Same chain, write done by t = 15; fault at t = 16 during T1:
        // recover T0 (2 s) + T1 (10 s) ⇒ 16 + 12 = 28.
        let costs = vec![
            TaskCosts::new(10.0, 5.0, 2.0),
            TaskCosts::new(10.0, 0.0, 0.0),
        ];
        let wf = Workflow::new(generators::chain(2), costs);
        let mut ckpt = FixedBitSet::new(2);
        ckpt.insert(0);
        let s = Schedule::new(&wf, topo::topological_order(wf.dag()), ckpt).unwrap();
        let mut inj = TraceInjector::new(vec![16.0]);
        let r = simulate_nonblocking(&wf, &s, &mut inj, NonBlockingConfig::default());
        assert!((r.makespan - 28.0).abs() < 1e-12, "makespan {}", r.makespan);
        assert!((r.time_recovery - 2.0).abs() < 1e-12);
        assert_eq!(r.time_rework, 0.0);
    }

    #[test]
    fn trailing_writes_do_not_gate_completion() {
        // Single checkpointed task: the write never finishes before the
        // makespan is declared.
        let costs = vec![TaskCosts::new(10.0, 100.0, 1.0)];
        let wf = Workflow::new(generators::chain(1), costs);
        let s = Schedule::always(&wf, vec![NodeId(0)]).unwrap();
        let mut inj = NoFaults;
        let r = simulate_nonblocking(&wf, &s, &mut inj, NonBlockingConfig::default());
        assert_eq!(r.makespan, 10.0);
    }

    #[test]
    fn rate_one_rare_faults_beats_blocking_on_average() {
        // Heavily checkpointed workflow, gentle fault rate: hiding c off
        // the critical path must win on average.
        let wf = Workflow::uniform(generators::chain(12), 30.0, 6.0);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let lambda = 1e-3;
        let trials = 4000;
        let (mut nb_sum, mut b_sum) = (0.0, 0.0);
        for i in 0..trials {
            let mut inj = ExponentialInjector::new(lambda, 1000 + i);
            nb_sum +=
                simulate_nonblocking(&wf, &s, &mut inj, NonBlockingConfig::default()).makespan;
            let mut inj = ExponentialInjector::new(lambda, 1000 + i);
            b_sum += simulate(&wf, &s, &mut inj, SimConfig::default()).makespan;
        }
        let (nb, bl) = (nb_sum / trials as f64, b_sum / trials as f64);
        assert!(nb < bl, "non-blocking {nb} should beat blocking {bl}");
    }

    /// Regression: a zero-cost checkpoint write used to spin forever (the
    /// zero-length compute step never drained it). It must complete
    /// instantly and behave exactly like the blocking engine.
    #[test]
    fn zero_cost_writes_terminate_and_match_blocking() {
        let wf = Workflow::uniform(generators::chain(4), 10.0, 0.0);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        for faults in [vec![], vec![15.0], vec![15.0, 26.0]] {
            let mut inj = TraceInjector::new(faults.clone());
            let cfg = NonBlockingConfig {
                compute_rate: 0.5,
                downtime: 1.0,
                ..Default::default()
            };
            let nb = simulate_nonblocking(&wf, &s, &mut inj, cfg);
            let mut inj = TraceInjector::new(faults);
            let bl = simulate(
                &wf,
                &s,
                &mut inj,
                SimConfig {
                    downtime: 1.0,
                    record_trace: false,
                },
            );
            assert_eq!(nb.makespan, bl.makespan);
            assert_eq!(nb.n_faults, bl.n_faults);
            // Instantly durable: faults recover (r = 0) instead of
            // re-executing.
            assert_eq!(nb.time_rework, bl.time_rework);
        }
    }

    /// The zero-allocation fast path is bit-identical to the reference
    /// engine: every bucket of every trial, across fixtures, fault rates,
    /// interference factors, and a scratch arena reused between trials.
    #[test]
    fn planned_nonblocking_engine_is_bit_identical_to_reference() {
        let fixtures: Vec<(Workflow, usize)> = vec![
            (Workflow::uniform(generators::chain(17), 9.0, 1.3), 3),
            (Workflow::uniform(generators::grid(4, 5), 7.0, 0.9), 2),
            (Workflow::uniform(generators::fork_join(6), 11.0, 2.1), 1),
        ];
        for (wf, every) in fixtures {
            let n = wf.n_tasks();
            let order = topo::topological_order(wf.dag());
            let ckpt = FixedBitSet::from_indices(n, (0..n).filter(|i| i % every == 0));
            let s = Schedule::new(&wf, order, ckpt).unwrap();
            let plan = TrialPlan::compile(&wf, &s);
            let mut scratch = TrialScratch::new(plan.n_tasks());
            for seed in 0..48u64 {
                let cfg = NonBlockingConfig {
                    downtime: 1.5,
                    compute_rate: if seed % 2 == 0 { 1.0 } else { 0.6 },
                    record_trace: false,
                };
                let mut inj = ExponentialInjector::new(8e-3, seed);
                let reference = simulate_nonblocking(&wf, &s, &mut inj, cfg);
                let mut inj = ExponentialInjector::new(8e-3, seed);
                let fast = simulate_nonblocking_planned(&plan, &mut scratch, &mut inj, cfg);
                assert_eq!(reference.makespan.to_bits(), fast.makespan.to_bits());
                assert_eq!(reference.n_faults, fast.n_faults);
                for (a, b) in [
                    (reference.time_work, fast.time_work),
                    (reference.time_rework, fast.time_rework),
                    (reference.time_recovery, fast.time_recovery),
                    (reference.time_checkpoint, fast.time_checkpoint),
                    (reference.time_wasted, fast.time_wasted),
                    (reference.time_downtime, fast.time_downtime),
                ] {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// The fast-path campaign runner reproduces the generic metric runner
    /// bit-for-bit (same seeds, same chunking, same sketch).
    #[test]
    fn run_nonblocking_trials_matches_generic_metric_runner_bitwise() {
        let wf = Workflow::uniform(generators::chain(9), 10.0, 1.0);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let cfg = NonBlockingConfig {
            downtime: 2.0,
            compute_rate: 0.7,
            record_trace: false,
        };
        let spec = TrialSpec::new(500, 7);
        let (fast_stats, fast_tail) = run_nonblocking_trials_with(&wf, &s, cfg, spec, |seed| {
            ExponentialInjector::new(4e-3, seed)
        });
        let (ref_stats, ref_tail) = crate::montecarlo::trial_metric_tail_stats(spec, |i| {
            let mut inj = ExponentialInjector::new(4e-3, spec.trial_seed(i));
            simulate_nonblocking(&wf, &s, &mut inj, cfg).makespan
        });
        assert_eq!(fast_stats.mean().to_bits(), ref_stats.mean().to_bits());
        assert_eq!(
            fast_stats.variance().to_bits(),
            ref_stats.variance().to_bits()
        );
        assert_eq!(fast_stats.n(), ref_stats.n());
        assert_eq!(fast_stats.min().to_bits(), ref_stats.min().to_bits());
        assert_eq!(fast_stats.max().to_bits(), ref_stats.max().to_bits());
        assert_eq!(fast_tail, ref_tail);
    }

    #[test]
    #[should_panic(expected = "compute_rate")]
    fn zero_rate_rejected() {
        let (wf, s) = two_chain(1.0);
        let mut inj = NoFaults;
        simulate_nonblocking(
            &wf,
            &s,
            &mut inj,
            NonBlockingConfig {
                compute_rate: 0.0,
                ..Default::default()
            },
        );
    }
}
