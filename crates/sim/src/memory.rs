//! Platform memory: which task outputs are currently resident.

use dagchkpt_dag::{FixedBitSet, NodeId};

/// The volatile memory of the macro-processor: the set of task outputs
/// available without recovery or re-execution. A fault clears it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryState {
    resident: FixedBitSet,
}

impl MemoryState {
    /// Empty memory for `n` tasks.
    pub fn new(n: usize) -> Self {
        MemoryState {
            resident: FixedBitSet::new(n),
        }
    }

    /// `true` when `v`'s output is in memory.
    #[inline]
    pub fn has(&self, v: NodeId) -> bool {
        self.resident.contains(v.index())
    }

    /// Marks `v`'s output as resident.
    #[inline]
    pub fn store(&mut self, v: NodeId) {
        self.resident.insert(v.index());
    }

    /// A fault: every output is lost.
    pub fn wipe(&mut self) {
        self.resident.clear();
    }

    /// Number of resident outputs.
    pub fn len(&self) -> usize {
        self.resident.count()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// View of the underlying bitset.
    pub fn as_bitset(&self) -> &FixedBitSet {
        &self.resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_wipe_cycle() {
        let mut m = MemoryState::new(4);
        assert!(m.is_empty());
        m.store(NodeId(1));
        m.store(NodeId(3));
        assert!(m.has(NodeId(1)) && m.has(NodeId(3)) && !m.has(NodeId(0)));
        assert_eq!(m.len(), 2);
        m.wipe();
        assert!(m.is_empty());
        assert!(!m.has(NodeId(1)));
    }
}
