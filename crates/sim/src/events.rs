//! Trace events emitted by the simulation engine.

use dagchkpt_dag::NodeId;
use serde::{Deserialize, Serialize};

/// What a completed execution unit was doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitKind {
    /// First-time execution of the task's work `w_i`.
    Work,
    /// Re-execution of a lost, non-checkpointed ancestor.
    Rework,
    /// Recovery of a checkpointed ancestor (`r_j`).
    Recovery,
    /// Writing the task's checkpoint (`c_i`).
    Checkpoint,
}

/// One event of the execution trace (all times in seconds since start).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A unit finished successfully at `at`.
    UnitCompleted {
        /// Task the unit belongs to.
        task: NodeId,
        /// What the unit was.
        kind: UnitKind,
        /// Completion time.
        at: f64,
    },
    /// A fault struck at `at`, wiping memory; the platform is down until
    /// `at + downtime`.
    Fault {
        /// Fault time.
        at: f64,
        /// Downtime paid.
        downtime: f64,
    },
    /// The task at this schedule position completed (work and, if selected,
    /// checkpoint) at `at`.
    TaskDone {
        /// The completed task.
        task: NodeId,
        /// Completion time.
        at: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize() {
        let e = Event::Fault {
            at: 1.5,
            downtime: 2.0,
        };
        let s = serde_json::to_string(&e).unwrap();
        assert!(s.contains("Fault"));
        let u = Event::UnitCompleted {
            task: NodeId(3),
            kind: UnitKind::Rework,
            at: 9.0,
        };
        assert!(serde_json::to_string(&u).unwrap().contains("Rework"));
    }
}
