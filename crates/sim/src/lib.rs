//! `dagchkpt-sim` — a discrete-event Monte-Carlo simulator of schedule
//! execution on a failure-prone platform.
//!
//! The simulator executes a [`dagchkpt_core::Schedule`] task by task under
//! faults drawn from a pluggable [`dagchkpt_failure::FaultInjector`],
//! reproducing the paper's execution model *operationally*:
//!
//! * platform memory holds task outputs; a fault wipes it entirely;
//! * checkpoints live in stable storage and survive faults;
//! * before a task runs, a topologically ordered **recovery plan** brings
//!   its missing inputs back: checkpointed ancestors are recovered (`r_j`),
//!   non-checkpointed ones re-executed (`w_j`), transitively;
//! * a fault anywhere in the task's block (plan, work, checkpoint) costs the
//!   downtime `D` and restarts the block with a freshly computed plan;
//! * recovered and re-executed outputs stay in memory for later tasks.
//!
//! Under exponential faults the sample mean over trials converges to the
//! value computed analytically by `dagchkpt_core::evaluator` (Theorem 3) —
//! the cross-validation tests in this crate and the `validate` experiment
//! binary check exactly that. Under Weibull faults the simulator is the
//! only source of truth (the analytic formulas assume memorylessness).

pub mod engine;
pub mod events;
pub mod memory;
pub mod montecarlo;
pub mod nonblocking;
pub mod objective;
pub mod plan;
pub mod quantile;
pub mod replicated;
pub mod stats;
pub mod tenant;
pub mod timeline;
pub mod trialplan;

pub use engine::{simulate, SimConfig, SimResult};
pub use events::{Event, UnitKind};
pub use memory::MemoryState;
pub use montecarlo::{
    run_trials, run_trials_with, trial_metric_stats, trial_metric_tail_stats, TrialSpec, TrialStats,
};
pub use nonblocking::{
    run_nonblocking_trials_with, simulate_nonblocking, simulate_nonblocking_planned,
    NonBlockingConfig,
};
pub use objective::McObjective;
pub use plan::{recovery_plan, recovery_plan_with, PlanStep};
pub use quantile::{QuantileSketch, TAIL_TARGETS};
pub use replicated::{
    run_replicated_sets_trials_with, run_replicated_trials_with, simulate_replicated,
    simulate_replicated_nonblocking, simulate_replicated_nonblocking_sets,
    simulate_replicated_planned, simulate_replicated_sets,
};
pub use stats::Stats;
pub use tenant::{run_tenant_trials_with, TenantConfig, TenantJob, TenantPolicy, TenantStats};
pub use trialplan::{simulate_planned, PlannedResult, TrialPlan, TrialScratch};
