//! Operational twins of the replication-aware analytic evaluator
//! (`dagchkpt_core::evaluator::replicated`): Monte-Carlo engines that run
//! each task's block redundantly on the replica set of a heterogeneous
//! platform and let the earliest surviving replica win.
//!
//! # Shared semantics
//!
//! For every block attempt, replica `p` (a member of the task's **replica
//! set** — historically the first `r_i` processors of the platform's
//! canonical order, or any explicit subset through the `*_sets` entry
//! points, which is what the joint optimizer's per-task replica selection
//! produces) computes its deterministic completion time
//! `d_p` from its speed and bandwidths and draws its first fault from its
//! own injector, **renewed at the attempt start**. The attempt succeeds at
//! `min{d_p : F_p ≥ d_p}`; when every replica faults first (a *group
//! failure*) the attempt is abandoned at `max_p F_p`, memory is wiped, the
//! platform pays the downtime, and the block restarts with a freshly
//! computed recovery plan. `n_faults` counts group failures — the event the
//! analytic evaluator's `expected_faults` counts.
//!
//! # Blocking vs non-blocking
//!
//! [`simulate_replicated`] folds the winner's checkpoint write into its
//! block (synchronous writes). [`simulate_replicated_nonblocking`] instead
//! enqueues the write on a platform-wide FIFO (the shared stable-storage
//! channel): while writes are in flight every replica computes at
//! `compute_rate`, a checkpoint becomes durable (recoverable) only when
//! its write completes, and a group failure kills the in-flight queue —
//! the Section-7 semantics of `crate::nonblocking`, lifted to replica
//! groups. One deliberate simplification: writes spawned by a block
//! (rework re-enqueues and the winner's own write) enter the queue at the
//! *end* of the successful attempt rather than mid-attempt; with no
//! checkpoints, or zero-cost writes, the engine therefore coincides with
//! the blocking one trial by trial — the regimes the differential suite
//! pins.
//!
//! # Checkpoint storage tiers
//!
//! Both engines price every checkpoint write as
//! `wf.checkpoint_cost(task) / p.write_bw` and every recovery read from
//! the plan `/ p.read_bw` — costs come exclusively from the [`Workflow`].
//! Tier-aware simulation therefore needs no engine changes: simulate the
//! cost-scaled copy `wf.with_scaled_costs(&ckpt_scale, &rec_scale)` where
//! the scales come from `dagchkpt_core::storage_scales` (checkpoints ×
//! the tier's write factor at the task's replica-group size, recoveries ×
//! the read factor of the tier the checkpoint was *written* to). This is
//! the same per-source pricing `ReplicatedEvaluator::with_storage` bakes
//! into its recovery costs, so the MC engines cross-validate the
//! storage-aware analytic evaluator unchanged; a unit tier scales by
//! exactly `1.0`, which is bitwise invisible.
//!
//! # Degenerate delegation
//!
//! On a degenerate platform (one reference processor) with all degrees 1,
//! both engines and the trial runner delegate to their homogeneous
//! counterparts, with processor rank 0 seeded by `TrialSpec::trial_seed`
//! verbatim ([`TrialSpec::proc_seed`]) — so a degenerate platform
//! reproduces the homogeneous statistics **bit for bit**.

use crate::engine::{simulate, SimConfig, SimResult};
use crate::events::UnitKind;
use crate::memory::MemoryState;
use crate::montecarlo::{planned_result_stats, TrialSpec, TrialStats};
use crate::nonblocking::{simulate_nonblocking, NonBlockingConfig};
use crate::plan::{recovery_plan, recovery_plan_with, PlanStep};
use crate::trialplan::{PlannedResult, TrialPlan, TrialScratch};
use dagchkpt_core::{Schedule, Workflow};
use dagchkpt_dag::{FixedBitSet, NodeId};
use dagchkpt_failure::{FaultInjector, HeteroPlatform, Processor};
use std::collections::VecDeque;

/// Outcome of one group attempt.
enum Attempt {
    /// Winning replica's rank and its elapsed time.
    Success { rank: usize, elapsed: f64 },
    /// All replicas faulted; elapsed time until the last one died.
    GroupFailure { elapsed: f64 },
}

/// Runs one group attempt over the replica `set` (processor indices into
/// `procs`, which also index `injectors`): per-replica deterministic
/// durations from `duration_of`, per-replica fault draws renewed at the
/// attempt start. For a prefix set `[0, …, r−1]` this is exactly the
/// historical degree-`r` attempt, draw for draw.
fn group_attempt<I: FaultInjector>(
    procs: &[Processor],
    set: &[usize],
    injectors: &mut [I],
    duration_of: impl Fn(&Processor) -> f64,
) -> Attempt {
    let mut best: Option<(f64, usize)> = None;
    let mut max_f = 0.0f64;
    for &rank in set {
        let p = &procs[rank];
        let d = duration_of(p);
        let f = injectors[rank].next_fault_after(0.0);
        if f >= d {
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, rank));
            }
        } else if f > max_f {
            max_f = f;
        }
    }
    match best {
        Some((elapsed, rank)) => Attempt::Success { rank, elapsed },
        None => Attempt::GroupFailure { elapsed: max_f },
    }
}

/// Sums a recovery plan into (rework, recovery) nominal amounts.
fn plan_amounts(plan: &[PlanStep]) -> (f64, f64) {
    let mut rework = 0.0;
    let mut recovery = 0.0;
    for step in plan {
        match step.kind {
            UnitKind::Rework => rework += step.duration,
            UnitKind::Recovery => recovery += step.duration,
            _ => unreachable!("plans only recover or re-execute"),
        }
    }
    (rework, recovery)
}

fn empty_result() -> SimResult {
    SimResult {
        makespan: 0.0,
        n_faults: 0,
        time_work: 0.0,
        time_rework: 0.0,
        time_recovery: 0.0,
        time_checkpoint: 0.0,
        time_wasted: 0.0,
        time_downtime: 0.0,
        trace: None,
    }
}

fn delegates(platform: &HeteroPlatform, degrees: &[usize]) -> bool {
    platform.is_degenerate() && degrees.iter().all(|&d| d == 1)
}

fn delegates_sets(platform: &HeteroPlatform, sets: &[Vec<usize>]) -> bool {
    platform.is_degenerate() && sets.iter().all(|s| s.as_slice() == [0])
}

fn max_degree(platform: &HeteroPlatform, degrees: &[usize]) -> usize {
    degrees
        .iter()
        .map(|&d| d.clamp(1, platform.n_procs()))
        .max()
        .unwrap_or(1)
}

/// Normalizes per-task replica sets against the platform (sorted, deduped,
/// clamped — see `dagchkpt_core::normalize_replica_set`).
fn normalized_sets(platform: &HeteroPlatform, sets: &[Vec<usize>]) -> Vec<Vec<usize>> {
    sets.iter()
        .map(|s| dagchkpt_core::normalize_replica_set(s, platform.n_procs()))
        .collect()
}

/// The canonical prefix table `[0, 1, …, P−1]`; a degree-`r` replica set
/// is `&prefix[..r]`.
fn prefix_table(platform: &HeteroPlatform) -> Vec<usize> {
    (0..platform.n_procs()).collect()
}

/// Simulates `schedule` once on `platform` with per-task replication
/// `degrees` (indexed by task id) and synchronous checkpoint writes.
/// `injectors[rank]` is processor rank `rank`'s fault source; at least
/// `max(degrees)` injectors are required.
pub fn simulate_replicated<I: FaultInjector>(
    wf: &Workflow,
    schedule: &Schedule,
    platform: &HeteroPlatform,
    degrees: &[usize],
    injectors: &mut [I],
) -> SimResult {
    let n = wf.n_tasks();
    assert_eq!(degrees.len(), n, "one replication degree per task");
    if delegates(platform, degrees) {
        return simulate(
            wf,
            schedule,
            &mut injectors[0],
            SimConfig {
                downtime: platform.downtime(),
                record_trace: false,
            },
        );
    }
    let prefix = prefix_table(platform);
    let sets: Vec<&[usize]> = degrees
        .iter()
        .map(|&d| &prefix[..d.clamp(1, prefix.len())])
        .collect();
    simulate_replicated_on(wf, schedule, platform, &sets, injectors)
}

/// [`simulate_replicated`] over explicit per-task replica **sets**
/// (processor indices into `platform.procs()`; `injectors` is indexed by
/// processor, so it must cover the largest index any set uses). Sets are
/// normalized like the analytic evaluator's. A prefix assignment
/// reproduces the degree API draw for draw.
pub fn simulate_replicated_sets<I: FaultInjector>(
    wf: &Workflow,
    schedule: &Schedule,
    platform: &HeteroPlatform,
    sets: &[Vec<usize>],
    injectors: &mut [I],
) -> SimResult {
    assert_eq!(sets.len(), wf.n_tasks(), "one replica set per task");
    let sets = normalized_sets(platform, sets);
    if delegates_sets(platform, &sets) {
        return simulate(
            wf,
            schedule,
            &mut injectors[0],
            SimConfig {
                downtime: platform.downtime(),
                record_trace: false,
            },
        );
    }
    let refs: Vec<&[usize]> = sets.iter().map(|s| s.as_slice()).collect();
    simulate_replicated_on(wf, schedule, platform, &refs, injectors)
}

/// Shared blocking group engine over per-task replica sets.
fn simulate_replicated_on<I: FaultInjector>(
    wf: &Workflow,
    schedule: &Schedule,
    platform: &HeteroPlatform,
    sets: &[&[usize]],
    injectors: &mut [I],
) -> SimResult {
    let n = wf.n_tasks();
    assert!(
        injectors.len() >= dagchkpt_core::replica_rank_count(sets),
        "need one injector per replica rank"
    );
    let procs = platform.procs();
    let downtime = platform.downtime();
    let mut t = 0.0f64;
    let mut memory = MemoryState::new(n);
    let mut res = empty_result();

    for &task in schedule.order() {
        let set = sets[task.index()];
        let w = wf.work(task);
        let c = if schedule.is_checkpointed(task) {
            wf.checkpoint_cost(task)
        } else {
            0.0
        };
        loop {
            let plan = recovery_plan(wf, schedule, &memory, task);
            let (rework, recovery) = plan_amounts(&plan);
            let attempt = group_attempt(procs, set, injectors, |p| {
                (rework + w) / p.speed + recovery / p.read_bw + c / p.write_bw
            });
            match attempt {
                Attempt::Success { rank, elapsed } => {
                    t += elapsed;
                    let p = &procs[rank];
                    res.time_rework += rework / p.speed;
                    res.time_recovery += recovery / p.read_bw;
                    res.time_work += w / p.speed;
                    res.time_checkpoint += c / p.write_bw;
                    for step in &plan {
                        memory.store(step.task);
                    }
                    memory.store(task);
                    break;
                }
                Attempt::GroupFailure { elapsed } => {
                    t += elapsed + downtime;
                    res.time_wasted += elapsed;
                    res.time_downtime += downtime;
                    res.n_faults += 1;
                    memory.wipe();
                }
            }
        }
    }
    res.makespan = t;
    res
}

/// Zero-allocation twin of the blocking group engine: identical group
/// attempts, pricing and accounting — bit-identical results (pinned by
/// the differential test below) — but recovery plans fill the compiled
/// `plan`'s scratch buffers instead of allocating, and no trace machinery
/// exists. The trial runners share one [`TrialPlan`] across all threads
/// and one [`TrialScratch`] per fold chunk.
pub fn simulate_replicated_planned<I: FaultInjector>(
    plan: &TrialPlan,
    scratch: &mut TrialScratch,
    platform: &HeteroPlatform,
    sets: &[&[usize]],
    injectors: &mut [I],
) -> PlannedResult {
    assert!(
        injectors.len() >= dagchkpt_core::replica_rank_count(sets),
        "need one injector per replica rank"
    );
    let procs = platform.procs();
    let downtime = platform.downtime();
    let mut t = 0.0f64;
    scratch.memory.clear();
    let mut res = PlannedResult::default();

    for idx in 0..plan.n_tasks() {
        let task = plan.order[idx];
        let set = sets[task.index()];
        let w = plan.work[task.index()];
        let c = plan.block_ckpt[task.index()];
        loop {
            plan.fill_recovery(
                &mut scratch.recovery,
                &plan.checkpointed,
                &scratch.memory,
                task,
            );
            let (rework, recovery) = plan_amounts(&scratch.recovery.steps);
            let attempt = group_attempt(procs, set, injectors, |p| {
                (rework + w) / p.speed + recovery / p.read_bw + c / p.write_bw
            });
            match attempt {
                Attempt::Success { rank, elapsed } => {
                    t += elapsed;
                    let p = &procs[rank];
                    res.time_rework += rework / p.speed;
                    res.time_recovery += recovery / p.read_bw;
                    res.time_work += w / p.speed;
                    res.time_checkpoint += c / p.write_bw;
                    for si in 0..scratch.recovery.steps.len() {
                        scratch
                            .memory
                            .insert(scratch.recovery.steps[si].task.index());
                    }
                    scratch.memory.insert(task.index());
                    break;
                }
                Attempt::GroupFailure { elapsed } => {
                    t += elapsed + downtime;
                    res.time_wasted += elapsed;
                    res.time_downtime += downtime;
                    res.n_faults += 1;
                    scratch.memory.clear();
                }
            }
        }
    }
    res.makespan = t;
    res
}

/// Simulates `schedule` once on `platform` with replication and
/// **non-blocking** checkpoint writes overlapping subsequent computation at
/// `compute_rate` (see the module docs for the exact semantics).
pub fn simulate_replicated_nonblocking<I: FaultInjector>(
    wf: &Workflow,
    schedule: &Schedule,
    platform: &HeteroPlatform,
    degrees: &[usize],
    injectors: &mut [I],
    compute_rate: f64,
) -> SimResult {
    assert!(
        compute_rate > 0.0 && compute_rate <= 1.0,
        "compute_rate must be in (0, 1]"
    );
    let n = wf.n_tasks();
    assert_eq!(degrees.len(), n, "one replication degree per task");
    if delegates(platform, degrees) {
        return simulate_nonblocking(
            wf,
            schedule,
            &mut injectors[0],
            NonBlockingConfig {
                downtime: platform.downtime(),
                compute_rate,
                record_trace: false,
            },
        );
    }
    let prefix = prefix_table(platform);
    let sets: Vec<&[usize]> = degrees
        .iter()
        .map(|&d| &prefix[..d.clamp(1, prefix.len())])
        .collect();
    simulate_replicated_nonblocking_on(wf, schedule, platform, &sets, injectors, compute_rate)
}

/// [`simulate_replicated_nonblocking`] over explicit per-task replica
/// sets (see [`simulate_replicated_sets`] for the indexing convention).
pub fn simulate_replicated_nonblocking_sets<I: FaultInjector>(
    wf: &Workflow,
    schedule: &Schedule,
    platform: &HeteroPlatform,
    sets: &[Vec<usize>],
    injectors: &mut [I],
    compute_rate: f64,
) -> SimResult {
    assert!(
        compute_rate > 0.0 && compute_rate <= 1.0,
        "compute_rate must be in (0, 1]"
    );
    assert_eq!(sets.len(), wf.n_tasks(), "one replica set per task");
    let sets = normalized_sets(platform, sets);
    if delegates_sets(platform, &sets) {
        return simulate_nonblocking(
            wf,
            schedule,
            &mut injectors[0],
            NonBlockingConfig {
                downtime: platform.downtime(),
                compute_rate,
                record_trace: false,
            },
        );
    }
    let refs: Vec<&[usize]> = sets.iter().map(|s| s.as_slice()).collect();
    simulate_replicated_nonblocking_on(wf, schedule, platform, &refs, injectors, compute_rate)
}

/// Shared non-blocking group engine over per-task replica sets.
fn simulate_replicated_nonblocking_on<I: FaultInjector>(
    wf: &Workflow,
    schedule: &Schedule,
    platform: &HeteroPlatform,
    sets: &[&[usize]],
    injectors: &mut [I],
    compute_rate: f64,
) -> SimResult {
    let n = wf.n_tasks();
    assert!(
        injectors.len() >= dagchkpt_core::replica_rank_count(sets),
        "need one injector per replica rank"
    );
    let procs = platform.procs();
    let downtime = platform.downtime();
    let positions = schedule.positions();
    let mut t = 0.0f64;
    let mut memory = MemoryState::new(n);
    let mut durable = FixedBitSet::new(n);
    let mut writes: VecDeque<(NodeId, f64)> = VecDeque::new();
    let mut res = empty_result();

    // Completes queued writes worth `wall` seconds of front-of-queue time.
    let drain = |writes: &mut VecDeque<(NodeId, f64)>, durable: &mut FixedBitSet, wall: f64| {
        let mut left = wall;
        while let Some(front) = writes.front_mut() {
            if front.1 > left {
                front.1 -= left;
                break;
            }
            left -= front.1;
            let (task, _) = writes.pop_front().expect("front exists");
            durable.insert(task.index());
        }
    };

    for &task in schedule.order() {
        let set = sets[task.index()];
        let w = wf.work(task);
        loop {
            let plan = recovery_plan_with(wf, &positions, &durable, &memory, task);
            let (rework, recovery) = plan_amounts(&plan);
            // Wall time at which the queue (as of the attempt start) empties.
            let queue_wall: f64 = writes.iter().map(|(_, rem)| rem).sum();
            let content = |p: &Processor| (rework + w) / p.speed + recovery / p.read_bw;
            let attempt = group_attempt(procs, set, injectors, |p| {
                let c = content(p);
                // At rate `compute_rate` until the queue drains, then full
                // speed.
                if c <= queue_wall * compute_rate {
                    c / compute_rate
                } else {
                    queue_wall + (c - queue_wall * compute_rate)
                }
            });
            match attempt {
                Attempt::Success { rank, elapsed } => {
                    t += elapsed;
                    drain(&mut writes, &mut durable, elapsed);
                    let p = &procs[rank];
                    res.time_rework += rework / p.speed;
                    res.time_recovery += recovery / p.read_bw;
                    res.time_work += w / p.speed;
                    // Interference stretch goes to the checkpoint bucket,
                    // like the single-processor non-blocking engine.
                    res.time_checkpoint += elapsed - content(p);
                    for step in &plan {
                        memory.store(step.task);
                        // A re-executed task the schedule wants checkpointed
                        // lost its write to an earlier group failure:
                        // re-enqueue it on the winner's write channel.
                        if step.kind == UnitKind::Rework
                            && schedule.is_checkpointed(step.task)
                            && !durable.contains(step.task.index())
                        {
                            writes
                                .push_back((step.task, wf.checkpoint_cost(step.task) / p.write_bw));
                        }
                    }
                    memory.store(task);
                    if schedule.is_checkpointed(task) {
                        writes.push_back((task, wf.checkpoint_cost(task) / p.write_bw));
                    }
                    // Zero-cost writes are durable immediately.
                    drain(&mut writes, &mut durable, 0.0);
                    break;
                }
                Attempt::GroupFailure { elapsed } => {
                    // Writes completing before the last replica died are
                    // durable; the rest die with the fault.
                    drain(&mut writes, &mut durable, elapsed);
                    writes.clear();
                    t += elapsed + downtime;
                    res.time_wasted += elapsed;
                    res.time_downtime += downtime;
                    res.n_faults += 1;
                    memory.wipe();
                }
            }
        }
    }
    res.makespan = t;
    res
}

/// Replicated Monte-Carlo trial runner: `make_injector(rank, seed)` builds
/// processor rank `rank`'s fault source for one trial, seeded by
/// [`TrialSpec::proc_seed`]. Statistics aggregate through the same chunked
/// accumulators as [`crate::run_trials_with`] — bit-identical for any
/// thread count, all-NaN for zero trials — and the degenerate platform
/// delegates to the homogeneous runner bit for bit.
pub fn run_replicated_trials_with<I, F>(
    wf: &Workflow,
    schedule: &Schedule,
    platform: &HeteroPlatform,
    degrees: &[usize],
    spec: TrialSpec,
    make_injector: F,
) -> TrialStats
where
    I: FaultInjector + Send,
    F: Fn(usize, u64) -> I + Sync,
{
    if delegates(platform, degrees) {
        return crate::montecarlo::run_trials_with(
            wf,
            schedule,
            platform.downtime(),
            spec,
            |seed| make_injector(0, seed),
        );
    }
    let ranks = max_degree(platform, degrees);
    let prefix = prefix_table(platform);
    let sets: Vec<&[usize]> = degrees
        .iter()
        .map(|&d| &prefix[..d.clamp(1, prefix.len())])
        .collect();
    run_planned_replicated(wf, schedule, platform, &sets, ranks, spec, make_injector)
}

/// Shared fast-path spine of both replicated runners: one compiled
/// [`TrialPlan`] for all threads, and per fold chunk one scratch holding
/// both the trial buffers and the reusable per-rank injector vector
/// (`clear` + `extend` per trial — no per-trial allocation).
fn run_planned_replicated<I, F>(
    wf: &Workflow,
    schedule: &Schedule,
    platform: &HeteroPlatform,
    sets: &[&[usize]],
    ranks: usize,
    spec: TrialSpec,
    make_injector: F,
) -> TrialStats
where
    I: FaultInjector + Send,
    F: Fn(usize, u64) -> I + Sync,
{
    let plan = TrialPlan::compile(wf, schedule);
    planned_result_stats(
        spec,
        || (TrialScratch::new(plan.n_tasks()), Vec::with_capacity(ranks)),
        |(scratch, injectors): &mut (TrialScratch, Vec<I>), i| {
            injectors.clear();
            injectors.extend((0..ranks).map(|rank| make_injector(rank, spec.proc_seed(i, rank))));
            simulate_replicated_planned(&plan, scratch, platform, sets, injectors)
        },
    )
}

/// [`run_replicated_trials_with`] over explicit per-task replica sets —
/// the Monte-Carlo twin of `dagchkpt_core::evaluate_replicated_sets`, and
/// the engine that cross-validates the joint optimizer's winning
/// (schedule, assignment) pairs. Injectors are created for every processor
/// rank up to the largest index any set uses, seeded by
/// [`TrialSpec::proc_seed`]; a prefix assignment reproduces
/// [`run_replicated_trials_with`] bit for bit.
pub fn run_replicated_sets_trials_with<I, F>(
    wf: &Workflow,
    schedule: &Schedule,
    platform: &HeteroPlatform,
    sets: &[Vec<usize>],
    spec: TrialSpec,
    make_injector: F,
) -> TrialStats
where
    I: FaultInjector + Send,
    F: Fn(usize, u64) -> I + Sync,
{
    assert_eq!(sets.len(), wf.n_tasks(), "one replica set per task");
    let sets = normalized_sets(platform, sets);
    if delegates_sets(platform, &sets) {
        return crate::montecarlo::run_trials_with(
            wf,
            schedule,
            platform.downtime(),
            spec,
            |seed| make_injector(0, seed),
        );
    }
    let ranks = dagchkpt_core::replica_rank_count(&sets);
    let refs: Vec<&[usize]> = sets.iter().map(|s| s.as_slice()).collect();
    run_planned_replicated(wf, schedule, platform, &refs, ranks, spec, make_injector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::run_trials_with;
    use dagchkpt_core::evaluator::replicated::evaluate_replicated;
    use dagchkpt_core::{
        storage_scales, CostRule, ReplicatedEvaluator, ReplicationStrategy, TaskCosts,
    };
    use dagchkpt_dag::{generators, topo};
    use dagchkpt_failure::{ExponentialInjector, StorageHierarchy, StorageTier};

    /// Test-local injector replaying per-attempt relative fault times.
    struct SeqInjector {
        times: std::vec::IntoIter<f64>,
    }

    impl SeqInjector {
        fn new(times: Vec<f64>) -> Self {
            SeqInjector {
                times: times.into_iter(),
            }
        }
    }

    impl FaultInjector for SeqInjector {
        fn next_fault_after(&mut self, t: f64) -> f64 {
            t + self.times.next().unwrap_or(f64::INFINITY)
        }
    }

    fn hetero2(downtime: f64) -> HeteroPlatform {
        HeteroPlatform::new(
            vec![
                Processor {
                    speed: 2.0,
                    ..Processor::reference(4e-3)
                },
                Processor::reference(1e-3),
            ],
            downtime,
        )
        .unwrap()
    }

    /// Deterministic walkthrough of the blocking group engine: winner
    /// selection, group failure, recovery pricing, and the accounting
    /// identity.
    #[test]
    fn blocking_walkthrough_with_hand_faults() {
        let costs = vec![
            TaskCosts::new(10.0, 4.0, 2.0),
            TaskCosts::new(10.0, 0.0, 0.0),
        ];
        let wf = Workflow::new(generators::chain(2), costs);
        let mut ckpt = FixedBitSet::new(2);
        ckpt.insert(0);
        let s = Schedule::new(&wf, topo::topological_order(wf.dag()), ckpt).unwrap();
        let platform = hetero2(1.0);
        // Rank 0 = speed-2 processor. Block T0: d0 = 10/2 + 4 = 9,
        // d1 = 14. Rank 0 faults at 3, rank 1 survives → winner rank 1 at
        // 14. Block T1: d0 = 5, d1 = 10; both fault (1, 2) → group failure
        // at 2, downtime 1. Retry recovers T0 (r = 2): d0 = 5 + 2 = 7,
        // d1 = 12; rank 0 survives → +7. Makespan 14 + 3 + 7 = 24.
        let mut injectors = vec![
            SeqInjector::new(vec![3.0, 1.0, 100.0]),
            SeqInjector::new(vec![20.0, 2.0, 0.5]),
        ];
        let r = simulate_replicated(&wf, &s, &platform, &[2, 2], &mut injectors);
        assert!((r.makespan - 24.0).abs() < 1e-12, "makespan {}", r.makespan);
        assert_eq!(r.n_faults, 1);
        assert!((r.time_work - 15.0).abs() < 1e-12); // 10 (rank 1) + 5 (rank 0)
        assert!((r.time_checkpoint - 4.0).abs() < 1e-12);
        assert!((r.time_recovery - 2.0).abs() < 1e-12);
        assert!((r.time_wasted - 2.0).abs() < 1e-12);
        assert!((r.time_downtime - 1.0).abs() < 1e-12);
        assert!((r.accounted_time() - r.makespan).abs() < 1e-9);
    }

    /// Degenerate platform + degree 1: the trial runner delegates and the
    /// statistics are bit-identical to the homogeneous runner.
    #[test]
    fn degenerate_trials_are_bit_identical_to_homogeneous() {
        let wf = Workflow::uniform(generators::fork_join(4), 10.0, 1.0);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let platform = HeteroPlatform::homogeneous(1, 3e-3, 1.0).unwrap();
        let spec = TrialSpec::new(2_000, 11);
        let rep = run_replicated_trials_with(&wf, &s, &platform, &[1; 10], spec, |_, seed| {
            ExponentialInjector::new(3e-3, seed)
        });
        let hom = run_trials_with(&wf, &s, 1.0, spec, |seed| {
            ExponentialInjector::new(3e-3, seed)
        });
        assert_eq!(rep.makespan.mean().to_bits(), hom.makespan.mean().to_bits());
        assert_eq!(
            rep.makespan.stddev().to_bits(),
            hom.makespan.stddev().to_bits()
        );
        assert_eq!(rep.faults.mean().to_bits(), hom.faults.mean().to_bits());
    }

    /// The blocking group engine converges to the replication-aware
    /// analytic evaluator (the sim-side half of the cross-validation).
    #[test]
    fn replicated_monte_carlo_matches_replicated_evaluator() {
        let wf = Workflow::with_cost_rule(
            generators::paper_figure1(),
            vec![10.0, 20.0, 5.0, 30.0, 8.0, 12.0, 25.0, 9.0],
            CostRule::ProportionalToWork { ratio: 0.1 },
        );
        let order = topo::topological_order(wf.dag());
        let ckpt = FixedBitSet::from_indices(8, [1usize, 3, 6]);
        let s = Schedule::new(&wf, order, ckpt).unwrap();
        let platform = hetero2(2.0);
        for degrees in [
            ReplicationStrategy::Uniform { degree: 2 }.degrees(&wf, 2),
            ReplicationStrategy::Heaviest {
                degree: 2,
                count: 3,
            }
            .degrees(&wf, 2),
        ] {
            let report = evaluate_replicated(&wf, &platform, &s, &degrees);
            let stats = run_replicated_trials_with(
                &wf,
                &s,
                &platform,
                &degrees,
                TrialSpec::new(40_000, 23),
                |rank, seed| ExponentialInjector::new(platform.procs()[rank].lambda, seed),
            );
            let z = (stats.makespan.mean() - report.expected_makespan) / stats.makespan.sem();
            assert!(
                z.abs() <= 4.0,
                "makespan z = {z:.2}: MC {} vs analytic {}",
                stats.makespan.mean(),
                report.expected_makespan
            );
            let fz = (stats.faults.mean() - report.expected_faults) / stats.faults.sem();
            assert!(
                fz.abs() <= 4.0,
                "faults z = {fz:.2}: MC {} vs analytic {}",
                stats.faults.mean(),
                report.expected_faults
            );
        }
    }

    /// With no checkpoints (nothing to write) the non-blocking engine
    /// coincides with the blocking one trial by trial.
    #[test]
    fn nonblocking_without_checkpoints_equals_blocking() {
        let wf = Workflow::uniform(generators::chain(5), 12.0, 3.0);
        let s = Schedule::never(&wf, topo::topological_order(wf.dag())).unwrap();
        let platform = hetero2(1.5);
        let spec = TrialSpec::new(300, 7);
        for i in 0..spec.trials {
            let mut a: Vec<ExponentialInjector> = (0..2)
                .map(|rank| {
                    ExponentialInjector::new(platform.procs()[rank].lambda, spec.proc_seed(i, rank))
                })
                .collect();
            let mut b: Vec<ExponentialInjector> = (0..2)
                .map(|rank| {
                    ExponentialInjector::new(platform.procs()[rank].lambda, spec.proc_seed(i, rank))
                })
                .collect();
            let blocking = simulate_replicated(&wf, &s, &platform, &[2; 5], &mut a);
            let nb = simulate_replicated_nonblocking(&wf, &s, &platform, &[2; 5], &mut b, 0.6);
            assert_eq!(nb.makespan.to_bits(), blocking.makespan.to_bits());
            assert_eq!(nb.n_faults, blocking.n_faults);
        }
    }

    /// Zero-cost checkpoint writes are durable instantly: non-blocking and
    /// blocking coincide even fully checkpointed, and nothing spins.
    #[test]
    fn nonblocking_zero_cost_writes_equal_blocking() {
        let wf = Workflow::uniform(generators::chain(4), 10.0, 0.0);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let platform = hetero2(1.0);
        let spec = TrialSpec::new(200, 3);
        for i in 0..spec.trials {
            let build = || -> Vec<ExponentialInjector> {
                (0..2)
                    .map(|rank| {
                        ExponentialInjector::new(
                            platform.procs()[rank].lambda,
                            spec.proc_seed(i, rank),
                        )
                    })
                    .collect()
            };
            let blocking = simulate_replicated(&wf, &s, &platform, &[2; 4], &mut build());
            let nb =
                simulate_replicated_nonblocking(&wf, &s, &platform, &[2; 4], &mut build(), 0.5);
            assert_eq!(nb.makespan.to_bits(), blocking.makespan.to_bits());
            assert_eq!(nb.time_rework.to_bits(), blocking.time_rework.to_bits());
        }
    }

    /// Non-blocking overlap hides write time when faults are rare, and the
    /// accounting identity holds.
    #[test]
    fn nonblocking_hides_writes_and_accounts_time() {
        let wf = Workflow::uniform(generators::chain(6), 20.0, 5.0);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let platform = hetero2(0.0);
        let mut injectors = vec![SeqInjector::new(vec![]), SeqInjector::new(vec![])];
        let nb = simulate_replicated_nonblocking(&wf, &s, &platform, &[2; 6], &mut injectors, 1.0);
        let mut injectors = vec![SeqInjector::new(vec![]), SeqInjector::new(vec![])];
        let blocking = simulate_replicated(&wf, &s, &platform, &[2; 6], &mut injectors);
        // Fault-free: rank 0 (speed 2) always wins; blocking pays 6 writes
        // of 5 s, non-blocking hides all but nothing of the compute.
        assert!((blocking.makespan - (60.0 + 30.0)).abs() < 1e-12);
        assert!((nb.makespan - 60.0).abs() < 1e-12, "nb {}", nb.makespan);
        assert!((nb.accounted_time() - nb.makespan).abs() < 1e-9);
        assert!((blocking.accounted_time() - blocking.makespan).abs() < 1e-9);
    }

    /// Zero trials yield the coherent all-NaN aggregate (the PR 2
    /// convention), replicated runner included.
    #[test]
    fn zero_trials_are_all_nan() {
        let wf = Workflow::uniform(generators::chain(3), 10.0, 1.0);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let platform = hetero2(0.0);
        for spec in [TrialSpec::new(0, 1), TrialSpec::sequential(0, 1)] {
            let stats =
                run_replicated_trials_with(&wf, &s, &platform, &[2; 3], spec, |rank, seed| {
                    ExponentialInjector::new(platform.procs()[rank].lambda, seed)
                });
            assert_eq!(stats.makespan.n(), 0);
            assert!(stats.makespan.mean().is_nan());
            assert!(stats.mean_breakdown.iter().all(|v| v.is_nan()));
        }
    }

    /// Parallel and sequential replicated statistics are bit-identical
    /// (chunked accumulation is shared with the homogeneous runner).
    #[test]
    fn replicated_parallel_sequential_bit_identity() {
        let wf = Workflow::uniform(generators::grid(3, 3), 8.0, 0.8);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let platform = hetero2(1.0);
        let run = |spec: TrialSpec| {
            run_replicated_trials_with(&wf, &s, &platform, &[2; 9], spec, |rank, seed| {
                ExponentialInjector::new(platform.procs()[rank].lambda, seed)
            })
        };
        let par = run(TrialSpec::new(3_000, 19));
        let seq = run(TrialSpec::sequential(3_000, 19));
        assert_eq!(par.makespan.mean().to_bits(), seq.makespan.mean().to_bits());
        assert_eq!(
            par.makespan.stddev().to_bits(),
            seq.makespan.stddev().to_bits()
        );
        for (a, b) in par.mean_breakdown.iter().zip(seq.mean_breakdown.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Prefix replica sets reproduce the degree API **bit for bit** across
    /// both engines and the trial runner — the sim-side anchor that lets
    /// per-task replica selection generalize the engines without touching
    /// any golden value.
    #[test]
    fn prefix_sets_are_bit_identical_to_degrees() {
        let wf = Workflow::uniform(generators::grid(3, 3), 8.0, 0.8);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let platform = hetero2(1.0);
        let degrees = [2usize, 1, 2, 1, 2, 1, 2, 1, 2];
        let sets: Vec<Vec<usize>> = degrees.iter().map(|&d| (0..d).collect()).collect();
        let build = |i: usize, spec: &TrialSpec| -> Vec<ExponentialInjector> {
            (0..2)
                .map(|rank| {
                    ExponentialInjector::new(platform.procs()[rank].lambda, spec.proc_seed(i, rank))
                })
                .collect()
        };
        let spec = TrialSpec::new(200, 17);
        for i in 0..spec.trials {
            let a = simulate_replicated(&wf, &s, &platform, &degrees, &mut build(i, &spec));
            let b = simulate_replicated_sets(&wf, &s, &platform, &sets, &mut build(i, &spec));
            assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
            assert_eq!(a.n_faults, b.n_faults);
            let a = simulate_replicated_nonblocking(
                &wf,
                &s,
                &platform,
                &degrees,
                &mut build(i, &spec),
                0.7,
            );
            let b = simulate_replicated_nonblocking_sets(
                &wf,
                &s,
                &platform,
                &sets,
                &mut build(i, &spec),
                0.7,
            );
            assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        }
        let by_deg =
            run_replicated_trials_with(&wf, &s, &platform, &degrees, spec, |rank, seed| {
                ExponentialInjector::new(platform.procs()[rank].lambda, seed)
            });
        let by_set =
            run_replicated_sets_trials_with(&wf, &s, &platform, &sets, spec, |rank, seed| {
                ExponentialInjector::new(platform.procs()[rank].lambda, seed)
            });
        assert_eq!(
            by_deg.makespan.mean().to_bits(),
            by_set.makespan.mean().to_bits()
        );
        assert_eq!(
            by_deg.makespan.stddev().to_bits(),
            by_set.makespan.stddev().to_bits()
        );
    }

    /// Non-prefix sets run end to end: a task pinned to the reliable slow
    /// processor only draws that processor's injector, and the stats agree
    /// with the exact set evaluator.
    #[test]
    fn non_prefix_sets_validate_against_set_evaluator() {
        let wf = Workflow::with_cost_rule(
            generators::paper_figure1(),
            vec![10.0, 20.0, 5.0, 30.0, 8.0, 12.0, 25.0, 9.0],
            CostRule::ProportionalToWork { ratio: 0.1 },
        );
        let order = topo::topological_order(wf.dag());
        let ckpt = FixedBitSet::from_indices(8, [1usize, 3, 6]);
        let s = Schedule::new(&wf, order, ckpt).unwrap();
        let platform = hetero2(2.0);
        let mut sets = vec![vec![0usize, 1]; 8];
        sets[3] = vec![1];
        sets[6] = vec![1];
        let report = dagchkpt_core::evaluate_replicated_sets(&wf, &platform, &s, &sets);
        let stats = run_replicated_sets_trials_with(
            &wf,
            &s,
            &platform,
            &sets,
            TrialSpec::new(40_000, 29),
            |rank, seed| ExponentialInjector::new(platform.procs()[rank].lambda, seed),
        );
        let z = (stats.makespan.mean() - report.expected_makespan) / stats.makespan.sem();
        assert!(
            z.abs() <= 4.0,
            "makespan z = {z:.2}: MC {} vs analytic {}",
            stats.makespan.mean(),
            report.expected_makespan
        );
        let fz = (stats.faults.mean() - report.expected_faults) / stats.faults.sem();
        assert!(fz.abs() <= 4.0, "faults z = {fz:.2}");
    }

    /// A unit storage hierarchy scales every cost by exactly 1.0: both
    /// engines are bit-identical trial by trial on the scaled copy — the
    /// sim-side half of the "unit tiers are invisible" guarantee.
    #[test]
    fn unit_storage_scales_are_bit_identical() {
        let wf = Workflow::uniform(generators::grid(3, 3), 8.0, 0.8);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let platform = hetero2(1.0);
        let h = StorageHierarchy::new(vec![StorageTier::unit("mem")]).unwrap();
        let (cs, rs) = storage_scales(&h, &[0; 9], &[2; 9]);
        let scaled = wf.with_scaled_costs(&cs, &rs);
        let spec = TrialSpec::new(200, 31);
        let build = |i: usize| -> Vec<ExponentialInjector> {
            (0..2)
                .map(|rank| {
                    ExponentialInjector::new(platform.procs()[rank].lambda, spec.proc_seed(i, rank))
                })
                .collect()
        };
        for i in 0..spec.trials {
            let a = simulate_replicated(&wf, &s, &platform, &[2; 9], &mut build(i));
            let b = simulate_replicated(&scaled, &s, &platform, &[2; 9], &mut build(i));
            assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
            assert_eq!(a.n_faults, b.n_faults);
            let a =
                simulate_replicated_nonblocking(&wf, &s, &platform, &[2; 9], &mut build(i), 0.7);
            let b = simulate_replicated_nonblocking(
                &scaled,
                &s,
                &platform,
                &[2; 9],
                &mut build(i),
                0.7,
            );
            assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        }
    }

    /// The blocking engine on a tier-scaled workflow converges to the
    /// storage-aware analytic evaluator — the MC half of the tier-pricing
    /// cross-validation, with a mixed per-task assignment and write
    /// contention in play.
    #[test]
    fn scaled_workflow_matches_storage_evaluator() {
        let wf = Workflow::with_cost_rule(
            generators::paper_figure1(),
            vec![10.0, 20.0, 5.0, 30.0, 8.0, 12.0, 25.0, 9.0],
            CostRule::ProportionalToWork { ratio: 0.1 },
        );
        let order = topo::topological_order(wf.dag());
        let ckpt = FixedBitSet::from_indices(8, [1usize, 3, 6]);
        let s = Schedule::new(&wf, order, ckpt).unwrap();
        let platform = hetero2(2.0);
        let h = StorageHierarchy::new(vec![
            StorageTier {
                name: "local".to_string(),
                write_bw: 2.0,
                read_bw: 0.5,
                compression: 1.0,
                contention: 0.5,
            },
            StorageTier {
                name: "pfs".to_string(),
                write_bw: 0.5,
                read_bw: 2.0,
                compression: 0.8,
                contention: 0.0,
            },
        ])
        .unwrap();
        let tiers = [0usize, 1, 0, 1, 0, 1, 0, 1];
        let degrees = [2usize; 8];
        let analytic = {
            let sets: Vec<Vec<usize>> = degrees.iter().map(|&d| (0..d).collect()).collect();
            let ev = ReplicatedEvaluator::from_sets(&wf, &platform, &sets).with_storage(&h, &tiers);
            ev.expected_makespan(&s)
        };
        let (cs, rs) = storage_scales(&h, &tiers, &degrees);
        let scaled = wf.with_scaled_costs(&cs, &rs);
        let stats = run_replicated_trials_with(
            &scaled,
            &s,
            &platform,
            &degrees,
            TrialSpec::new(40_000, 37),
            |rank, seed| ExponentialInjector::new(platform.procs()[rank].lambda, seed),
        );
        let z = (stats.makespan.mean() - analytic) / stats.makespan.sem();
        assert!(
            z.abs() <= 4.0,
            "makespan z = {z:.2}: MC {} vs analytic {analytic}",
            stats.makespan.mean(),
        );
    }

    /// Tier write factors flow through the non-blocking write queue: a
    /// write-slow tier stretches the interference window deterministically
    /// (fault-free hand walkthrough), and the accounting identity holds.
    #[test]
    fn nonblocking_write_queue_prices_the_tier() {
        let wf = Workflow::uniform(generators::chain(2), 10.0, 5.0);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let platform = hetero2(0.0);
        let h = StorageHierarchy::new(vec![
            StorageTier::unit("mem"),
            StorageTier {
                name: "slow".to_string(),
                write_bw: 0.5,
                read_bw: 1.0,
                compression: 1.0,
                contention: 0.0,
            },
        ])
        .unwrap();
        let run = |tiers: &[usize; 2]| {
            let (cs, rs) = storage_scales(&h, tiers, &[2; 2]);
            let scaled = wf.with_scaled_costs(&cs, &rs);
            let mut inj = vec![SeqInjector::new(vec![]), SeqInjector::new(vec![])];
            simulate_replicated_nonblocking(&scaled, &s, &platform, &[2; 2], &mut inj, 0.5)
        };
        // Rank 0 (speed 2) wins every attempt. Unit tier: T0 at 5,
        // enqueue a 5 s write; T1 content 5 > 5·0.5 → 5 + (5 − 2.5) = 7.5.
        let unit = run(&[0, 0]);
        assert!(
            (unit.makespan - 12.5).abs() < 1e-12,
            "unit {}",
            unit.makespan
        );
        // Slow tier doubles the write to 10 s: T1 content 5 ≤ 10·0.5 →
        // 5 / 0.5 = 10.
        let slow = run(&[1, 1]);
        assert!(
            (slow.makespan - 15.0).abs() < 1e-12,
            "slow {}",
            slow.makespan
        );
        assert!((slow.accounted_time() - slow.makespan).abs() < 1e-9);
    }

    /// The fast-path group engine is bit-identical to the reference
    /// engine — every bucket, every trial, including a reused scratch.
    #[test]
    fn planned_replicated_engine_is_bit_identical_to_reference() {
        let wf = Workflow::uniform(generators::grid(3, 3), 8.0, 0.8);
        let order = topo::topological_order(wf.dag());
        let ckpt = FixedBitSet::from_indices(9, [0usize, 2, 5, 7]);
        let s = Schedule::new(&wf, order, ckpt).unwrap();
        let platform = hetero2(1.0);
        let degrees = [2usize, 1, 2, 1, 2, 1, 2, 1, 2];
        let prefix: Vec<usize> = (0..2).collect();
        let sets: Vec<&[usize]> = degrees.iter().map(|&d| &prefix[..d]).collect();
        let plan = TrialPlan::compile(&wf, &s);
        let mut scratch = TrialScratch::new(plan.n_tasks());
        let spec = TrialSpec::new(200, 41);
        let build = |i: usize| -> Vec<ExponentialInjector> {
            (0..2)
                .map(|rank| {
                    ExponentialInjector::new(platform.procs()[rank].lambda, spec.proc_seed(i, rank))
                })
                .collect()
        };
        for i in 0..spec.trials {
            let reference = simulate_replicated(&wf, &s, &platform, &degrees, &mut build(i));
            let fast =
                simulate_replicated_planned(&plan, &mut scratch, &platform, &sets, &mut build(i));
            assert_eq!(reference.makespan.to_bits(), fast.makespan.to_bits());
            assert_eq!(reference.n_faults, fast.n_faults);
            for (a, b) in [
                (reference.time_work, fast.time_work),
                (reference.time_rework, fast.time_rework),
                (reference.time_recovery, fast.time_recovery),
                (reference.time_checkpoint, fast.time_checkpoint),
                (reference.time_wasted, fast.time_wasted),
                (reference.time_downtime, fast.time_downtime),
            ] {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn proc_seed_rank_zero_is_the_trial_seed() {
        let spec = TrialSpec::new(10, 99);
        for i in 0..10 {
            assert_eq!(spec.proc_seed(i, 0), spec.trial_seed(i));
            assert_ne!(spec.proc_seed(i, 1), spec.proc_seed(i, 0));
            assert_ne!(spec.proc_seed(i, 1), spec.proc_seed(i, 2));
        }
    }
}
