//! Streaming quantile estimation: the P² algorithm (Jain & Chlamtac,
//! CACM 1985) over the three tail targets the cost spine reports
//! (p50/p95/p99), with a deterministic merge for the chunked executor.
//!
//! Why P² and not a vendored t-digest: the sketch must ride inside the
//! per-chunk `TrialAccum`s of `montecarlo::sim_result_stats`, whose
//! bit-identity guarantee (same statistics for any `RAYON_NUM_THREADS`)
//! rests on two properties — chunk boundaries that are a pure function of
//! the item count ([`rayon::fold_chunk_len`]) and an accumulator merge
//! that is deterministic in its two operands. P² is ~25 floats of state
//! per target, needs no allocation after the first five observations, and
//! its CDF-averaging merge below is a pure function of the operands; a
//! t-digest's centroid compression is heavily tuning- and
//! insertion-order-sensitive, far more code, and would buy accuracy this
//! use (three fixed quantiles of a unimodal makespan distribution) does
//! not need. See `vendor/README.md`.
//!
//! Determinism contract: for a fixed observation sequence split at fixed
//! chunk boundaries and merged left-to-right in chunk order, the sketch
//! state — hence every reported quantile — is bit-identical regardless of
//! which threads executed which chunk. The merge is *not* equal to
//! single-stream insertion (P² is order-sensitive by design); it is the
//! same deterministic approximation on every run.
//!
//! Zero observations report `NaN` for every quantile, matching the
//! all-`NaN` empty `TrialStats` convention, and the manual serde impls
//! write non-finite values as `null` (the `Stats` pattern), so an empty
//! sketch survives a JSON round trip.

use serde::{map_get, DeError, Deserialize, Serialize, Value};

/// The quantile targets every sketch tracks, in reporting order.
pub const TAIL_TARGETS: [f64; 3] = [0.5, 0.95, 0.99];

/// Observations buffered exactly before the P² markers initialize.
const INIT_OBS: usize = 5;

/// One P² marker bank tracking a single target quantile `q`: five marker
/// heights straddling `{min, q/2, q, (1+q)/2, max}`, with integer actual
/// positions and fractional desired positions updated per observation.
#[derive(Debug, Clone, PartialEq)]
struct P2Markers {
    /// Target quantile in (0, 1).
    q: f64,
    /// Marker heights; `heights[2]` is the running estimate.
    heights: [f64; 5],
    /// Actual marker positions (1-based counts; integers stored as `f64`).
    pos: [f64; 5],
    /// Desired marker positions (fractional).
    desired: [f64; 5],
}

impl P2Markers {
    /// Initializes from the first five observations, pre-sorted ascending.
    fn init(q: f64, sorted: &[f64; 5]) -> Self {
        P2Markers {
            q,
            heights: *sorted,
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
        }
    }

    /// Per-observation desired-position increments.
    fn increments(&self) -> [f64; 5] {
        let q = self.q;
        [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
    }

    /// Absorbs one observation of height `x` — the classic P² update.
    fn observe(&mut self, x: f64) {
        // Locate the cell and update the extreme heights.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = self.heights[4].max(x);
            3
        } else {
            // Largest i in 0..=3 with heights[i] <= x; NaN-total ordering
            // is irrelevant here because the branches above caught every
            // non-interior x.
            (0..4).rev().find(|&i| self.heights[i] <= x).unwrap_or(0)
        };
        for p in self.pos.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        let inc = self.increments();
        for (d, di) in self.desired.iter_mut().zip(inc) {
            *d += di;
        }
        // Move interior markers toward their desired positions, one step
        // at a time, until none is off by a full position (merged banks
        // can start with fractional positions, so a single observation may
        // unlock several steps; each pass moves every eligible marker at
        // most once, so the loop terminates).
        loop {
            let mut moved = false;
            for i in 1..4 {
                moved |= self.adjust(i);
            }
            if !moved {
                break;
            }
        }
    }

    /// One P² adjustment step for interior marker `i`; returns whether it
    /// moved.
    fn adjust(&mut self, i: usize) -> bool {
        let d = self.desired[i] - self.pos[i];
        let up = d >= 1.0 && self.pos[i + 1] - self.pos[i] > 1.0;
        let down = d <= -1.0 && self.pos[i - 1] - self.pos[i] < -1.0;
        if !(up || down) {
            return false;
        }
        let s: f64 = if up { 1.0 } else { -1.0 };
        let si = if up { i + 1 } else { i - 1 };
        // Piecewise-parabolic prediction; fall back to linear when it
        // would break marker monotonicity.
        let parabolic = self.heights[i]
            + s / (self.pos[i + 1] - self.pos[i - 1])
                * ((self.pos[i] - self.pos[i - 1] + s) * (self.heights[i + 1] - self.heights[i])
                    / (self.pos[i + 1] - self.pos[i])
                    + (self.pos[i + 1] - self.pos[i] - s)
                        * (self.heights[i] - self.heights[i - 1])
                        / (self.pos[i] - self.pos[i - 1]));
        self.heights[i] = if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
            parabolic
        } else {
            self.heights[i]
                + s * (self.heights[si] - self.heights[i]) / (self.pos[si] - self.pos[i])
        };
        self.pos[i] += s;
        true
    }

    /// The bank's five `(level, height)` CDF sample points: a marker at
    /// position `p` of `n = pos[4]` observations estimates the empirical
    /// level `(p − 1)/(n − 1)`, so the points span level 0 (min) to 1
    /// (max).
    fn level_points(&self) -> [(f64, f64); 5] {
        let denom = (self.pos[4] - 1.0).max(1.0);
        let mut out = [(0.0, 0.0); 5];
        for (slot, (&p, &h)) in out.iter_mut().zip(self.pos.iter().zip(self.heights.iter())) {
            *slot = ((p - 1.0) / denom, h);
        }
        out
    }

    /// Merges two banks tracking the same target by averaging their
    /// piecewise-linear CDF estimates (weighted by observation count) and
    /// re-deriving the five markers from the merged distribution at the
    /// target's canonical levels. A pure function of the two operands, so
    /// the chunk-ordered fold stays deterministic; the result starts at a
    /// steady state (`desired == pos`).
    fn merged(a: &P2Markers, b: &P2Markers) -> P2Markers {
        let q = a.q;
        let (na, nb) = (a.pos[4], b.pos[4]);
        let n = na + nb;
        let pa = a.level_points();
        let pb = b.level_points();
        // The union of both banks' marker heights, ascending, with the
        // merged CDF level at each.
        let mut xs = [0.0; 10];
        xs[..5].copy_from_slice(&a.heights);
        xs[5..].copy_from_slice(&b.heights);
        xs.sort_by(f64::total_cmp);
        let pts = xs.map(|x| {
            (
                (na * interp_level(&pa, x) + nb * interp_level(&pb, x)) / n,
                x,
            )
        });
        // Invert the merged CDF at the marker levels {0, q/2, q,
        // (1+q)/2, 1} and restore height monotonicity (independent
        // interpolations can cross by rounding).
        let targets = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0];
        let mut heights = [xs[0], 0.0, 0.0, 0.0, xs[9]];
        for i in 1..4 {
            heights[i] = interp_height(&pts, targets[i]);
        }
        for i in 1..5 {
            if heights[i] < heights[i - 1] {
                heights[i] = heights[i - 1];
            }
        }
        let pos = targets.map(|t| 1.0 + t * (n - 1.0));
        P2Markers {
            q,
            heights,
            pos,
            desired: pos,
        }
    }
}

/// The level (CDF estimate) of height `x` under a bank's piecewise-linear
/// marker curve: 0 at or below the min marker, 1 at or above the max.
fn interp_level(pts: &[(f64, f64); 5], x: f64) -> f64 {
    if x <= pts[0].1 {
        return 0.0;
    }
    if x >= pts[4].1 {
        return 1.0;
    }
    for i in (0..4).rev() {
        let (l0, h0) = pts[i];
        if h0 <= x {
            let (l1, h1) = pts[i + 1];
            return if h1 > h0 {
                l0 + (x - h0) / (h1 - h0) * (l1 - l0)
            } else {
                l1
            };
        }
    }
    0.0
}

/// The height at `level` under a merged `(level, height)` curve sorted by
/// level, clamping at the ends.
fn interp_height(pts: &[(f64, f64); 10], level: f64) -> f64 {
    match pts.iter().position(|p| p.0 >= level) {
        Some(0) => pts[0].1,
        None => pts[9].1,
        Some(i) => {
            let (l0, h0) = pts[i - 1];
            let (l1, h1) = pts[i];
            if l1 > l0 {
                h0 + (level - l0) / (l1 - l0) * (h1 - h0)
            } else {
                h1
            }
        }
    }
}

/// Streaming three-target (p50/p95/p99) P² quantile sketch with a
/// deterministic merge — the distribution-carrying half of the cost spine.
///
/// The first five observations are buffered exactly (so tiny samples
/// report exact order statistics); the sixth initializes one marker bank
/// per target. Memory is constant from then on.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Total observations.
    count: u64,
    /// The first observations, exact, until the markers initialize.
    buffer: Vec<f64>,
    /// One marker bank per [`TAIL_TARGETS`] entry, `None` while buffered.
    banks: Option<Box<[P2Markers; 3]>>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// Empty sketch: every quantile is `NaN`.
    pub fn new() -> Self {
        QuantileSketch {
            count: 0,
            buffer: Vec::new(),
            banks: None,
        }
    }

    /// Number of observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        match &mut self.banks {
            None if self.buffer.len() < INIT_OBS => self.buffer.push(x),
            None => {
                self.init_banks();
                self.observe_banks(x);
            }
            Some(_) => self.observe_banks(x),
        }
    }

    /// Adds a chunk of observations in slice order — bit-identical to
    /// pushing them one by one. Once the marker banks exist the per-item
    /// dispatch (`banks` discriminant test, count bump) is hoisted out of
    /// the loop, so a chunk runs as three tight `observe` streams — the
    /// batched consumer for the fast path's per-chunk sample buffers.
    pub fn push_slice(&mut self, xs: &[f64]) {
        let mut rest = xs;
        while self.banks.is_none() {
            let Some((&x, tail)) = rest.split_first() else {
                return;
            };
            self.push(x);
            rest = tail;
        }
        self.count += rest.len() as u64;
        let banks = self.banks.as_mut().expect("banks initialized");
        for &x in rest {
            for bank in banks.iter_mut() {
                bank.observe(x);
            }
        }
    }

    fn init_banks(&mut self) {
        let mut sorted = [0.0; INIT_OBS];
        sorted.copy_from_slice(&self.buffer);
        sorted.sort_by(f64::total_cmp);
        self.banks = Some(Box::new(TAIL_TARGETS.map(|q| P2Markers::init(q, &sorted))));
        self.buffer.clear();
    }

    fn observe_banks(&mut self, x: f64) {
        for bank in self.banks.as_mut().expect("banks initialized").iter_mut() {
            bank.observe(x);
        }
    }

    /// Merges a later chunk's sketch. Deterministic in the two operands
    /// (see the module docs): buffered operands replay their exact
    /// observations; two initialized sketches merge bank-by-bank by
    /// averaging their CDF estimates ([`P2Markers::merged`]).
    #[must_use]
    pub fn merge(mut self, other: QuantileSketch) -> QuantileSketch {
        if other.count == 0 {
            return self;
        }
        if self.count == 0 {
            return other;
        }
        match (self.banks.is_some(), other.banks.is_some()) {
            (_, false) => {
                for &x in &other.buffer {
                    self.push(x);
                }
                self
            }
            (false, true) => {
                // Only the right side has marker state: replay our exact
                // buffer into it (the result is a function of the operand
                // values only, so determinism holds; `push` counts each
                // replayed observation).
                let mut big = other;
                for &x in &self.buffer {
                    big.push(x);
                }
                big
            }
            (true, true) => {
                let other_banks = other.banks.as_ref().expect("initialized");
                let own_banks = self.banks.as_mut().expect("initialized");
                for (own, bank) in own_banks.iter_mut().zip(other_banks.iter()) {
                    *own = P2Markers::merged(own, bank);
                }
                self.count += other.count;
                self
            }
        }
    }

    /// The estimate for quantile `q` ∈ (0, 1): exact (linear-interpolated
    /// order statistics) while ≤ 5 observations are buffered; the middle
    /// marker of the matching bank for the [`TAIL_TARGETS`]; a
    /// monotone interpolation over the pooled marker positions of all
    /// three banks for any other `q`. `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let Some(banks) = &self.banks else {
            return exact_quantile(&self.buffer, q);
        };
        for bank in banks.iter() {
            if bank.q == q {
                return bank.heights[2];
            }
        }
        // Pool every marker as a (level, height) point, where a marker at
        // position p estimates the (p−1)/(n−1) empirical level; enforce
        // height monotonicity (banks are independent approximations) and
        // interpolate.
        let n = self.count as f64;
        let mut points: Vec<(f64, f64)> = banks
            .iter()
            .flat_map(|b| {
                b.pos
                    .iter()
                    .zip(b.heights)
                    .map(|(&p, h)| (if n > 1.0 { (p - 1.0) / (n - 1.0) } else { 0.5 }, h))
                    .collect::<Vec<_>>()
            })
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut run_max = f64::NEG_INFINITY;
        for p in &mut points {
            run_max = run_max.max(p.1);
            p.1 = run_max;
        }
        match points.iter().position(|p| p.0 >= q) {
            Some(0) => points[0].1,
            None => points.last().expect("non-empty").1,
            Some(i) => {
                let (l0, h0) = points[i - 1];
                let (l1, h1) = points[i];
                if l1 > l0 {
                    h0 + (q - l0) / (l1 - l0) * (h1 - h0)
                } else {
                    h1
                }
            }
        }
    }

    /// Median estimate (`NaN` when empty).
    pub fn p50(&self) -> f64 {
        self.quantile(TAIL_TARGETS[0])
    }

    /// 95th-percentile estimate (`NaN` when empty).
    pub fn p95(&self) -> f64 {
        self.quantile(TAIL_TARGETS[1])
    }

    /// 99th-percentile estimate (`NaN` when empty).
    pub fn p99(&self) -> f64 {
        self.quantile(TAIL_TARGETS[2])
    }
}

/// Exact linear-interpolated quantile of a small unsorted sample.
fn exact_quantile(sample: &[f64], q: f64) -> f64 {
    if sample.is_empty() {
        return f64::NAN;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let h = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

/// JSON has no non-finite floats: write them as `null` (the `Stats`
/// pattern); [`de_f64`] restores `NaN`. Observations are makespans —
/// finite by construction — so in practice only the empty sketch and NaN
/// summaries hit this path.
fn ser_f64(x: f64) -> Value {
    if x.is_finite() {
        Value::Float(x)
    } else {
        Value::Null
    }
}

fn de_f64(v: &Value) -> Result<f64, DeError> {
    match v {
        Value::Null => Ok(f64::NAN),
        other => f64::from_value(other),
    }
}

fn ser_f64s(xs: &[f64]) -> Value {
    Value::Seq(xs.iter().map(|&x| ser_f64(x)).collect())
}

fn de_f64s<const N: usize>(v: &Value, what: &'static str) -> Result<[f64; N], DeError> {
    let Value::Seq(items) = v else {
        return Err(DeError::expected("sequence", what, v));
    };
    if items.len() != N {
        return Err(DeError::expected("5-element sequence", what, v));
    }
    let mut out = [0.0; N];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = de_f64(item)?;
    }
    Ok(out)
}

impl Serialize for P2Markers {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("q".to_string(), Value::Float(self.q)),
            ("heights".to_string(), ser_f64s(&self.heights)),
            ("pos".to_string(), ser_f64s(&self.pos)),
            ("desired".to_string(), ser_f64s(&self.desired)),
        ])
    }
}

impl Deserialize for P2Markers {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::expected("map", "P2Markers", v))?;
        let field = |name: &'static str| {
            map_get(entries, name).ok_or_else(|| DeError::missing_field(name, "P2Markers"))
        };
        Ok(P2Markers {
            q: f64::from_value(field("q")?)?,
            heights: de_f64s(field("heights")?, "P2Markers.heights")?,
            pos: de_f64s(field("pos")?, "P2Markers.pos")?,
            desired: de_f64s(field("desired")?, "P2Markers.desired")?,
        })
    }
}

impl Serialize for QuantileSketch {
    fn to_value(&self) -> Value {
        let banks = match &self.banks {
            None => Value::Null,
            Some(b) => Value::Seq(b.iter().map(|m| m.to_value()).collect()),
        };
        Value::Map(vec![
            ("count".to_string(), self.count.to_value()),
            (
                "buffer".to_string(),
                Value::Seq(self.buffer.iter().map(|&x| ser_f64(x)).collect()),
            ),
            ("banks".to_string(), banks),
        ])
    }
}

impl Deserialize for QuantileSketch {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::expected("map", "QuantileSketch", v))?;
        let field = |name: &'static str| {
            map_get(entries, name).ok_or_else(|| DeError::missing_field(name, "QuantileSketch"))
        };
        let buffer = match field("buffer")? {
            Value::Seq(items) => items.iter().map(de_f64).collect::<Result<Vec<_>, _>>()?,
            other => {
                return Err(DeError::expected(
                    "sequence",
                    "QuantileSketch.buffer",
                    other,
                ))
            }
        };
        let banks = match field("banks")? {
            Value::Null => None,
            Value::Seq(items) if items.len() == 3 => {
                let mut parsed = items
                    .iter()
                    .map(P2Markers::from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                let c = parsed.pop().expect("3 banks");
                let b = parsed.pop().expect("3 banks");
                let a = parsed.pop().expect("3 banks");
                Some(Box::new([a, b, c]))
            }
            other => {
                return Err(DeError::expected(
                    "null or 3-element sequence",
                    "QuantileSketch.banks",
                    other,
                ))
            }
        };
        Ok(QuantileSketch {
            count: u64::from_value(field("count")?)?,
            buffer,
            banks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(xs: &[f64]) -> QuantileSketch {
        let mut s = QuantileSketch::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Satellite: the empty sketch matches the all-NaN `TrialStats`
    /// convention for every quantile.
    #[test]
    fn empty_sketch_reports_all_nan_quantiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        for q in [0.01, 0.5, 0.95, 0.99, 0.999] {
            assert!(s.quantile(q).is_nan(), "q={q}");
        }
        assert!(s.p50().is_nan() && s.p95().is_nan() && s.p99().is_nan());
    }

    #[test]
    fn tiny_samples_are_exact_order_statistics() {
        let one = sketch_of(&[7.5]);
        assert_eq!(one.p50(), 7.5);
        assert_eq!(one.p99(), 7.5);
        let five = sketch_of(&[5.0, 1.0, 4.0, 2.0, 3.0]);
        assert_eq!(five.p50(), 3.0);
        assert_eq!(five.quantile(0.25), 2.0);
        assert!((five.p95() - 4.8).abs() < 1e-12);
        assert_eq!(five.quantile(1.0), 5.0);
    }

    #[test]
    fn median_of_a_known_stream_is_close() {
        // 0..=100 shuffled deterministically: exact p50 = 50.
        let xs: Vec<f64> = (0..101).map(|i| ((i * 37) % 101) as f64).collect();
        let s = sketch_of(&xs);
        assert_eq!(s.count(), 101);
        assert!((s.p50() - 50.0).abs() < 3.0, "p50 {}", s.p50());
        assert!(s.p99() >= s.p95() - 1e-9 && s.p95() >= s.p50() - 1e-9);
    }

    /// The fast path's batched consumer must not move a single marker bit
    /// relative to the scalar `push` loop — across the buffered → banked
    /// transition and for empty/partial chunks.
    #[test]
    fn push_slice_is_bit_identical_to_scalar_pushes() {
        let xs: Vec<f64> = (0..333).map(|i| ((i * 73) % 101) as f64 - 17.5).collect();
        for split in [0usize, 1, 3, 5, 6, 100, 333] {
            let mut scalar = QuantileSketch::new();
            for &x in &xs {
                scalar.push(x);
            }
            let mut batched = QuantileSketch::new();
            batched.push_slice(&xs[..split]);
            batched.push_slice(&[]);
            batched.push_slice(&xs[split..]);
            assert_eq!(scalar, batched, "split at {split}");
        }
    }

    #[test]
    fn merge_is_deterministic_and_tracks_the_distribution() {
        // An LCG-mixed stream so every 250-chunk is a representative
        // sample of the same distribution, as MC trial chunks are.
        let mut state = 1u64;
        let xs: Vec<f64> = (0..2000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64 * 2000.0
            })
            .collect();
        let chunks: Vec<&[f64]> = xs.chunks(250).collect();
        let fold = |_: ()| {
            chunks
                .iter()
                .map(|c| sketch_of(c))
                .fold(QuantileSketch::new(), QuantileSketch::merge)
        };
        let a = fold(());
        let b = fold(());
        assert_eq!(a, b, "merge must be deterministic");
        assert_eq!(a.count(), 2000);
        let exact50 = exact_quantile(&xs, 0.5);
        let exact99 = exact_quantile(&xs, 0.99);
        assert!(
            (a.p50() - exact50).abs() < 40.0,
            "p50 {} vs {exact50}",
            a.p50()
        );
        assert!(
            (a.p99() - exact99).abs() < 25.0,
            "p99 {} vs {exact99}",
            a.p99()
        );
    }

    #[test]
    fn merge_handles_buffered_operands() {
        let empty = QuantileSketch::new();
        let small = sketch_of(&[3.0, 1.0]);
        let big = sketch_of(&(0..100).map(f64::from).collect::<Vec<_>>());
        assert_eq!(empty.clone().merge(small.clone()), small);
        assert_eq!(small.clone().merge(empty.clone()), small);
        let m = big.clone().merge(small.clone());
        assert_eq!(m.count(), 102);
        let m2 = small.merge(big);
        assert_eq!(m2.count(), 102);
        assert!(m2.p50().is_finite());
    }

    /// Satellite: the empty sketch round-trips through JSON (its `banks`
    /// field is `null`, and any non-finite state writes as `null`).
    #[test]
    fn json_roundtrip_including_empty() {
        for (name, s) in [
            ("empty", QuantileSketch::new()),
            ("buffered", sketch_of(&[2.0, -1.5, 7.0])),
            (
                "initialized",
                sketch_of(&(0..50).map(|i| (i as f64).sin() * 10.0).collect::<Vec<_>>()),
            ),
        ] {
            let json = serde_json::to_string(&s).unwrap();
            let back: QuantileSketch = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s, "{name}: {json}");
        }
        let json = serde_json::to_string(&QuantileSketch::new()).unwrap();
        assert!(json.contains("\"banks\":null"), "{json}");
    }
}
