//! The execution engine: runs one schedule under one fault trajectory.

use crate::events::{Event, UnitKind};
use crate::memory::MemoryState;
use crate::plan::recovery_plan;
use dagchkpt_core::{Schedule, Workflow};
use dagchkpt_failure::FaultInjector;

/// Engine configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimConfig {
    /// Downtime `D` paid after every fault (seconds).
    pub downtime: f64,
    /// Record the full event trace (off by default — traces are large).
    pub record_trace: bool,
}

/// Outcome of one simulated execution.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total wall-clock time.
    pub makespan: f64,
    /// Number of faults that struck.
    pub n_faults: u64,
    /// Time spent running tasks' own work units to unit completion. At
    /// least `Σ w_i`; larger when a fault lands between a task's work and
    /// the end of its block (e.g. during its checkpoint), forcing the work
    /// to be redone.
    pub time_work: f64,
    /// Time spent re-executing lost non-checkpointed ancestors.
    pub time_rework: f64,
    /// Time spent recovering checkpointed outputs.
    pub time_recovery: f64,
    /// Time spent writing checkpoints (successful writes only).
    pub time_checkpoint: f64,
    /// Partial unit time lost to faults.
    pub time_wasted: f64,
    /// Total downtime.
    pub time_downtime: f64,
    /// Event trace, when requested via [`SimConfig::record_trace`].
    pub trace: Option<Vec<Event>>,
}

impl SimResult {
    /// The accounting identity: all buckets sum to the makespan.
    pub fn accounted_time(&self) -> f64 {
        self.time_work
            + self.time_rework
            + self.time_recovery
            + self.time_checkpoint
            + self.time_wasted
            + self.time_downtime
    }
}

/// Simulates `schedule` once under faults from `injector`.
///
/// The injector provides absolute fault times; each fault wipes memory,
/// costs `config.downtime`, and restarts the current task's block (recovery
/// plan + work + checkpoint) with a freshly computed plan.
pub fn simulate(
    wf: &Workflow,
    schedule: &Schedule,
    injector: &mut dyn FaultInjector,
    config: SimConfig,
) -> SimResult {
    let n = wf.n_tasks();
    let mut t = 0.0f64;
    let mut next_fault = injector.next_fault_after(0.0);
    let mut memory = MemoryState::new(n);
    let mut res = SimResult {
        makespan: 0.0,
        n_faults: 0,
        time_work: 0.0,
        time_rework: 0.0,
        time_recovery: 0.0,
        time_checkpoint: 0.0,
        time_wasted: 0.0,
        time_downtime: 0.0,
        trace: config.record_trace.then(Vec::new),
    };

    // Executes one unit; returns false when a fault struck (memory wiped,
    // downtime paid, next fault rescheduled).
    let mut run_unit = |t: &mut f64,
                        next_fault: &mut f64,
                        memory: &mut MemoryState,
                        res: &mut SimResult,
                        duration: f64|
     -> bool {
        if *next_fault >= *t + duration {
            *t += duration;
            true
        } else {
            res.time_wasted += *next_fault - *t;
            *t = *next_fault;
            res.n_faults += 1;
            memory.wipe();
            if let Some(tr) = res.trace.as_mut() {
                tr.push(Event::Fault {
                    at: *t,
                    downtime: config.downtime,
                });
            }
            *t += config.downtime;
            res.time_downtime += config.downtime;
            *next_fault = injector.next_fault_after(*t);
            false
        }
    };

    for &task in schedule.order() {
        let w = wf.work(task);
        let c = if schedule.is_checkpointed(task) {
            wf.checkpoint_cost(task)
        } else {
            0.0
        };
        // The X_i block: retry until the plan, the work, and the optional
        // checkpoint all complete without a fault interrupting.
        'block: loop {
            let plan = recovery_plan(wf, schedule, &memory, task);
            for step in &plan {
                if !run_unit(
                    &mut t,
                    &mut next_fault,
                    &mut memory,
                    &mut res,
                    step.duration,
                ) {
                    continue 'block;
                }
                match step.kind {
                    UnitKind::Recovery => res.time_recovery += step.duration,
                    UnitKind::Rework => res.time_rework += step.duration,
                    _ => unreachable!("plans only recover or re-execute"),
                }
                // The output is resident from now on — a later fault wipes
                // `memory` anyway, so storing immediately is exact.
                memory.store(step.task);
                if let Some(tr) = res.trace.as_mut() {
                    tr.push(Event::UnitCompleted {
                        task: step.task,
                        kind: step.kind,
                        at: t,
                    });
                }
            }
            if !run_unit(&mut t, &mut next_fault, &mut memory, &mut res, w) {
                continue 'block;
            }
            res.time_work += w;
            memory.store(task);
            if let Some(tr) = res.trace.as_mut() {
                tr.push(Event::UnitCompleted {
                    task,
                    kind: UnitKind::Work,
                    at: t,
                });
            }
            if c > 0.0 {
                if !run_unit(&mut t, &mut next_fault, &mut memory, &mut res, c) {
                    continue 'block;
                }
                res.time_checkpoint += c;
                if let Some(tr) = res.trace.as_mut() {
                    tr.push(Event::UnitCompleted {
                        task,
                        kind: UnitKind::Checkpoint,
                        at: t,
                    });
                }
            }
            if let Some(tr) = res.trace.as_mut() {
                tr.push(Event::TaskDone { task, at: t });
            }
            break 'block;
        }
    }

    res.makespan = t;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagchkpt_core::{CostRule, TaskCosts};
    use dagchkpt_dag::{generators, topo, FixedBitSet, NodeId};
    use dagchkpt_failure::{NoFaults, TraceInjector};

    fn cfg(d: f64) -> SimConfig {
        SimConfig {
            downtime: d,
            record_trace: true,
        }
    }

    #[test]
    fn fault_free_run_is_work_plus_checkpoints() {
        let wf = Workflow::with_cost_rule(
            generators::paper_figure1(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            CostRule::ProportionalToWork { ratio: 0.1 },
        );
        let order = topo::topological_order(wf.dag());
        let mut ckpt = FixedBitSet::new(8);
        ckpt.insert(3);
        ckpt.insert(4);
        let s = Schedule::new(&wf, order, ckpt).unwrap();
        let mut inj = NoFaults;
        let r = simulate(&wf, &s, &mut inj, cfg(0.0));
        assert!((r.makespan - (36.0 + 0.9)).abs() < 1e-12);
        assert_eq!(r.n_faults, 0);
        assert_eq!(r.time_rework, 0.0);
        assert_eq!(r.time_recovery, 0.0);
        assert!((r.time_checkpoint - 0.9).abs() < 1e-12);
        assert!((r.accounted_time() - r.makespan).abs() < 1e-9);
        // Trace ends with the last task.
        let trace = r.trace.unwrap();
        assert!(matches!(trace.last(), Some(Event::TaskDone { .. })));
    }

    /// Regression: with `record_trace` off the trace stays `None` — the
    /// `Option<Vec<Event>>` is built with `bool::then(Vec::new)`, which
    /// never touches the heap (a capacity-0 `Vec`) — and recording a
    /// trace must not perturb a single bit of the numeric results.
    #[test]
    fn no_trace_path_skips_the_trace_and_changes_nothing() {
        let wf = Workflow::uniform(generators::chain(6), 10.0, 1.0);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let mut inj = TraceInjector::new(vec![15.0, 40.0]);
        let quiet = simulate(
            &wf,
            &s,
            &mut inj,
            SimConfig {
                downtime: 2.0,
                record_trace: false,
            },
        );
        assert!(quiet.trace.is_none());
        let mut inj = TraceInjector::new(vec![15.0, 40.0]);
        let traced = simulate(&wf, &s, &mut inj, cfg(2.0));
        assert!(traced.trace.is_some());
        assert_eq!(quiet.makespan.to_bits(), traced.makespan.to_bits());
        assert_eq!(quiet.n_faults, traced.n_faults);
        for (a, b) in [
            (quiet.time_work, traced.time_work),
            (quiet.time_rework, traced.time_rework),
            (quiet.time_recovery, traced.time_recovery),
            (quiet.time_checkpoint, traced.time_checkpoint),
            (quiet.time_wasted, traced.time_wasted),
            (quiet.time_downtime, traced.time_downtime),
        ] {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn single_fault_on_unchekpointed_chain_reexecutes_prefix() {
        // T0(10) → T1(10), no checkpoints. Fault at t = 15 (during T1):
        // wipe, re-execute T0 (10) then T1 (10) ⇒ makespan 35.
        let wf = Workflow::uniform(generators::chain(2), 10.0, 0.0);
        let s = Schedule::never(&wf, topo::topological_order(wf.dag())).unwrap();
        let mut inj = TraceInjector::new(vec![15.0]);
        let r = simulate(&wf, &s, &mut inj, cfg(0.0));
        assert!((r.makespan - 35.0).abs() < 1e-12);
        assert_eq!(r.n_faults, 1);
        assert!((r.time_wasted - 5.0).abs() < 1e-12); // 5s of T1 lost
        assert!((r.time_rework - 10.0).abs() < 1e-12); // T0 redone
        assert!((r.time_work - 20.0).abs() < 1e-12);
        assert!((r.accounted_time() - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn single_fault_with_checkpoint_recovers_instead() {
        // T0 (w=10, c=2, r=1, ckpt) → T1 (w=10). T0 done+ckpt at 12.
        // Fault at 14 (2s into T1): recover T0 (1s) + T1 (10s) ⇒ 25.
        let costs = vec![
            TaskCosts::new(10.0, 2.0, 1.0),
            TaskCosts::new(10.0, 0.0, 0.0),
        ];
        let wf = Workflow::new(generators::chain(2), costs);
        let mut ckpt = FixedBitSet::new(2);
        ckpt.insert(0);
        let s = Schedule::new(&wf, topo::topological_order(wf.dag()), ckpt).unwrap();
        let mut inj = TraceInjector::new(vec![14.0]);
        let r = simulate(&wf, &s, &mut inj, cfg(0.0));
        assert!((r.makespan - 25.0).abs() < 1e-12, "makespan {}", r.makespan);
        assert!((r.time_recovery - 1.0).abs() < 1e-12);
        assert_eq!(r.time_rework, 0.0);
        assert!((r.time_wasted - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fault_during_checkpoint_redoes_the_task() {
        // T0 (w=10, c=5, ckpt). Fault at t = 12 (2s into the checkpoint):
        // restart block ⇒ 12 + 10 + 5 = 27.
        let costs = vec![TaskCosts::new(10.0, 5.0, 1.0)];
        let wf = Workflow::new(generators::chain(1), costs);
        let s = Schedule::always(&wf, vec![NodeId(0)]).unwrap();
        let mut inj = TraceInjector::new(vec![12.0]);
        let r = simulate(&wf, &s, &mut inj, cfg(0.0));
        assert!((r.makespan - 27.0).abs() < 1e-12, "makespan {}", r.makespan);
        // 2s of the checkpoint were cut short; the 10s of completed work
        // whose output died stay in `time_work` (run twice).
        assert!((r.time_wasted - 2.0).abs() < 1e-12);
        assert!((r.time_work - 20.0).abs() < 1e-12);
        assert!((r.time_checkpoint - 5.0).abs() < 1e-12); // only the good write
        assert!((r.accounted_time() - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn downtime_is_paid_per_fault() {
        let wf = Workflow::uniform(generators::chain(1), 10.0, 0.0);
        let s = Schedule::never(&wf, vec![NodeId(0)]).unwrap();
        // Faults at 5 and 18 (i.e. 3s into the second attempt, which starts
        // at 5 + D = 15 with D = 10… so fault at 18 wastes 3s).
        let mut inj = TraceInjector::new(vec![5.0, 18.0]);
        let r = simulate(
            &wf,
            &s,
            &mut inj,
            SimConfig {
                downtime: 10.0,
                record_trace: false,
            },
        );
        // 5 (lost) + 10 (down) + 3 (lost) + 10 (down) + 10 (work) = 38.
        assert!((r.makespan - 38.0).abs() < 1e-12, "makespan {}", r.makespan);
        assert_eq!(r.n_faults, 2);
        assert!((r.time_downtime - 20.0).abs() < 1e-12);
        assert!((r.time_wasted - 8.0).abs() < 1e-12);
        assert!((r.accounted_time() - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn paper_figure1_walkthrough_single_fault_during_t5() {
        // Weights 10, c = r = 1 for the checkpointed tasks {T3, T4};
        // linearization T0 T3 T1 T2 T4 T5 T6 T7. Completions: T0@10,
        // T3@21 (w+c), T1@31, T2@41, T4@52 (w+c), then T5. Fault at t = 55
        // (3s into T5). Recovery per the paper's walk-through:
        //   X5 (T5): recover T3 (1) + T5 (10)          → 55 + 11 = 66
        //   X6 (T6): recover T4 (1) + T6 (10)          → 77
        //   X7 (T7): re-execute T1 (10), T2 (10) + T7 (10) → 107
        let costs: Vec<TaskCosts> = (0..8)
            .map(|i| {
                if i == 3 || i == 4 {
                    TaskCosts::new(10.0, 1.0, 1.0)
                } else {
                    TaskCosts::new(10.0, 0.0, 0.0)
                }
            })
            .collect();
        let wf = Workflow::new(generators::paper_figure1(), costs);
        let order: Vec<NodeId> = [0u32, 3, 1, 2, 4, 5, 6, 7]
            .iter()
            .map(|&i| NodeId(i))
            .collect();
        let mut ckpt = FixedBitSet::new(8);
        ckpt.insert(3);
        ckpt.insert(4);
        let s = Schedule::new(&wf, order, ckpt).unwrap();
        let mut inj = TraceInjector::new(vec![55.0]);
        let r = simulate(&wf, &s, &mut inj, cfg(0.0));
        assert!(
            (r.makespan - 107.0).abs() < 1e-12,
            "makespan {}",
            r.makespan
        );
        assert_eq!(r.n_faults, 1);
        assert!((r.time_recovery - 2.0).abs() < 1e-12); // r3 + r4
        assert!((r.time_rework - 20.0).abs() < 1e-12); // T1, T2
        assert!((r.time_wasted - 3.0).abs() < 1e-12);
    }

    #[test]
    fn work_time_at_least_total_work_and_accounting_balances() {
        // Every task's own work unit succeeds at least once, whatever the
        // fault pattern; the time buckets always sum to the makespan.
        let wf = Workflow::uniform(generators::fork_join(3), 7.0, 1.0);
        let s = Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let mut inj = TraceInjector::new(vec![3.0, 10.0, 11.0, 30.0, 31.0, 55.0]);
        let r = simulate(&wf, &s, &mut inj, cfg(2.0));
        assert!(r.time_work >= wf.total_work() - 1e-9);
        assert!((r.accounted_time() - r.makespan).abs() < 1e-9);
        // The injected times at 11 falls inside a downtime window and never
        // strikes; 3, 10, 30 and 55 do.
        assert_eq!(r.n_faults, 4);
    }
}
