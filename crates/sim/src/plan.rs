//! Recovery plans: what must run before a task when some of its inputs are
//! no longer in memory.

use crate::events::UnitKind;
use crate::memory::MemoryState;
use dagchkpt_core::{Schedule, Workflow};
use dagchkpt_dag::NodeId;

/// One step of a recovery plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanStep {
    /// The ancestor being brought back.
    pub task: NodeId,
    /// `Recovery` for checkpointed ancestors, `Rework` otherwise.
    pub kind: UnitKind,
    /// Time the step takes (`r_j` or `w_j`).
    pub duration: f64,
}

/// Computes the ordered recovery plan for `target` given the current
/// `memory`: the transitive closure of missing inputs through
/// non-checkpointed ancestors — checkpointed frontier recovered, interior
/// re-executed — sorted in schedule order (which is topological), so every
/// re-executed task sees its own inputs restored first.
///
/// This is the operational twin of the evaluator's `T↓k_i` lost sets.
pub fn recovery_plan(
    wf: &Workflow,
    schedule: &Schedule,
    memory: &MemoryState,
    target: NodeId,
) -> Vec<PlanStep> {
    let pos = schedule.positions();
    recovery_plan_with(wf, &pos, schedule.checkpoints(), memory, target)
}

/// [`recovery_plan`] with an explicit *recoverable* set — the tasks whose
/// checkpoint is durably on stable storage **right now**. The blocking
/// engine passes the schedule's checkpoint set (writes are synchronous, so
/// selected = durable); the non-blocking engine passes only the writes that
/// have actually completed.
pub fn recovery_plan_with(
    wf: &Workflow,
    positions: &[usize],
    recoverable: &dagchkpt_dag::FixedBitSet,
    memory: &MemoryState,
    target: NodeId,
) -> Vec<PlanStep> {
    let dag = wf.dag();
    let n = wf.n_tasks();
    let mut needed: Vec<NodeId> = Vec::new();
    let mut seen = vec![false; n];
    let mut stack = vec![target];
    while let Some(t) = stack.pop() {
        for &p in dag.preds(t) {
            if seen[p.index()] || memory.has(p) {
                continue;
            }
            seen[p.index()] = true;
            needed.push(p);
            if !recoverable.contains(p.index()) {
                // Re-executing p needs p's own inputs restored too.
                stack.push(p);
            }
        }
    }
    // Schedule order is a linearization, hence a valid execution order.
    needed.sort_by_key(|v| positions[v.index()]);
    needed
        .into_iter()
        .map(|v| {
            if recoverable.contains(v.index()) {
                PlanStep {
                    task: v,
                    kind: UnitKind::Recovery,
                    duration: wf.recovery_cost(v),
                }
            } else {
                PlanStep {
                    task: v,
                    kind: UnitKind::Rework,
                    duration: wf.work(v),
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagchkpt_core::CostRule;
    use dagchkpt_dag::{generators, FixedBitSet};

    /// Figure-1 fixture: order T0 T3 T1 T2 T4 T5 T6 T7, ckpt {T3, T4}.
    fn fig1() -> (Workflow, Schedule) {
        let wf = Workflow::with_cost_rule(
            generators::paper_figure1(),
            vec![1.0; 8],
            CostRule::ProportionalToWork { ratio: 0.1 },
        );
        let order: Vec<NodeId> = [0u32, 3, 1, 2, 4, 5, 6, 7]
            .iter()
            .map(|&i| NodeId(i))
            .collect();
        let mut ckpt = FixedBitSet::new(8);
        ckpt.insert(3);
        ckpt.insert(4);
        let s = Schedule::new(&wf, order, ckpt).unwrap();
        (wf, s)
    }

    #[test]
    fn empty_plan_when_inputs_resident() {
        let (wf, s) = fig1();
        let mut mem = MemoryState::new(8);
        for v in [0u32, 3] {
            mem.store(NodeId(v));
        }
        assert!(recovery_plan(&wf, &s, &mem, NodeId(4)).is_empty());
    }

    #[test]
    fn entry_task_needs_no_plan() {
        let (wf, s) = fig1();
        let mem = MemoryState::new(8);
        assert!(recovery_plan(&wf, &s, &mem, NodeId(0)).is_empty());
        assert!(recovery_plan(&wf, &s, &mem, NodeId(1)).is_empty());
    }

    #[test]
    fn paper_walkthrough_after_fault_during_t5() {
        // Fault during T5's execution: memory empty. The paper: "To
        // re-execute T5, one needs to recover the checkpointed output of
        // T3."
        let (wf, s) = fig1();
        let mem = MemoryState::new(8);
        let plan = recovery_plan(&wf, &s, &mem, NodeId(5));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].task, NodeId(3));
        assert_eq!(plan[0].kind, UnitKind::Recovery);
        assert!((plan[0].duration - 0.1).abs() < 1e-12);
    }

    #[test]
    fn paper_walkthrough_t6_then_t7() {
        // After T5 re-executed (in memory): "To execute T6, one then needs
        // to recover the checkpointed output of T4 and use the output of T5
        // that is now available in memory."
        let (wf, s) = fig1();
        let mut mem = MemoryState::new(8);
        mem.store(NodeId(3)); // recovered for T5
        mem.store(NodeId(5)); // re-executed
        let plan = recovery_plan(&wf, &s, &mem, NodeId(6));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].task, NodeId(4));
        assert_eq!(plan[0].kind, UnitKind::Recovery);
        // Then T7: "the output of T2 was lost … no task is checkpointed on
        // the reverse path from T7 to T1. One must therefore re-execute T1,
        // T2, and then finally T7."
        mem.store(NodeId(4));
        mem.store(NodeId(6));
        let plan = recovery_plan(&wf, &s, &mem, NodeId(7));
        let steps: Vec<(u32, UnitKind)> = plan.iter().map(|p| (p.task.0, p.kind)).collect();
        assert_eq!(steps, vec![(1, UnitKind::Rework), (2, UnitKind::Rework)]);
    }

    #[test]
    fn plan_is_in_executable_order() {
        // Chain of 4, nothing checkpointed, empty memory: re-execute
        // ancestors in chain order.
        let wf = Workflow::uniform(generators::chain(4), 2.0, 0.0);
        let order = dagchkpt_dag::topo::topological_order(wf.dag());
        let s = Schedule::never(&wf, order).unwrap();
        let mem = MemoryState::new(4);
        let plan = recovery_plan(&wf, &s, &mem, NodeId(3));
        let ids: Vec<u32> = plan.iter().map(|p| p.task.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(plan.iter().all(|p| p.kind == UnitKind::Rework));
    }

    #[test]
    fn diamond_ancestor_counted_once() {
        let mut b = dagchkpt_dag::DagBuilder::new(4);
        b.add_edge(0usize, 1usize);
        b.add_edge(0usize, 2usize);
        b.add_edge(1usize, 3usize);
        b.add_edge(2usize, 3usize);
        let wf = Workflow::uniform(b.build().unwrap(), 5.0, 0.0);
        let order = dagchkpt_dag::topo::topological_order(wf.dag());
        let s = Schedule::never(&wf, order).unwrap();
        let plan = recovery_plan(&wf, &s, &MemoryState::new(4), NodeId(3));
        let ids: Vec<u32> = plan.iter().map(|p| p.task.0).collect();
        assert_eq!(ids, vec![0, 1, 2]); // 0 appears once
    }
}
