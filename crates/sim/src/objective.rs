//! A Monte-Carlo-backed [`Objective`]: estimate a schedule's expected
//! makespan by running the blocking engine(s) over a fixed, seeded
//! [`TrialSpec`], and let the generic optimizers
//! (`dagchkpt_core::strategies`) sweep against the estimate.
//!
//! This is the backend of last resort — use it when no closed form covers
//! the semantics (e.g. prototyping a new failure process) or to sanity-
//! check the analytic backends end to end. Two caveats the analytic
//! objectives do not have:
//!
//! * the cost is an **estimate**: optimizer decisions inside ~2 standard
//!   errors are noise, so use enough trials for the gaps you care about;
//! * it is **deterministic but seed-pinned**: the same `(schedule, spec)`
//!   always returns the same value (chunk-folded accumulators, fixed
//!   per-trial seeds), which is what makes it usable inside the parallel
//!   sweeps at all — but a different master seed is a different objective.

use crate::montecarlo::{run_trials_with, TrialSpec, TrialStats};
use crate::replicated::run_replicated_sets_trials_with;
use dagchkpt_core::{CostSummary, Objective, Schedule, Workflow};
use dagchkpt_failure::{ExponentialInjector, FaultModel, HeteroPlatform};

/// Which platform the Monte-Carlo estimate runs on.
enum Backend<'a> {
    /// The paper's single machine under exponential faults.
    Homogeneous { model: FaultModel },
    /// A heterogeneous platform with fixed per-task replica sets,
    /// exponential faults at each processor's own rate.
    Replicated {
        platform: &'a HeteroPlatform,
        sets: Vec<Vec<usize>>,
    },
}

/// Monte-Carlo estimator of the expected makespan, usable as an
/// optimization [`Objective`].
pub struct McObjective<'a> {
    wf: &'a Workflow,
    spec: TrialSpec,
    backend: Backend<'a>,
}

impl<'a> McObjective<'a> {
    /// Estimator on the homogeneous machine of `model`.
    pub fn homogeneous(wf: &'a Workflow, model: FaultModel, spec: TrialSpec) -> Self {
        McObjective {
            wf,
            spec,
            backend: Backend::Homogeneous { model },
        }
    }

    /// Estimator on `platform` with per-task replica `sets` (processor
    /// indices into `platform.procs()`).
    pub fn replicated(
        wf: &'a Workflow,
        platform: &'a HeteroPlatform,
        sets: Vec<Vec<usize>>,
        spec: TrialSpec,
    ) -> Self {
        McObjective {
            wf,
            spec,
            backend: Backend::Replicated { platform, sets },
        }
    }

    /// The seeded trial run behind every cost query — one code path, so
    /// `cost`, `cost_summary` and `cost_quantile` all see the same trials
    /// (and the mean stays bit-identical whichever is asked).
    fn trial_stats(&self, schedule: &Schedule) -> TrialStats {
        match &self.backend {
            Backend::Homogeneous { model } => {
                run_trials_with(self.wf, schedule, model.downtime(), self.spec, |seed| {
                    ExponentialInjector::new(model.lambda(), seed)
                })
            }
            Backend::Replicated { platform, sets } => run_replicated_sets_trials_with(
                self.wf,
                schedule,
                platform,
                sets,
                self.spec,
                |rank, seed| ExponentialInjector::new(platform.procs()[rank].lambda, seed),
            ),
        }
    }
}

impl Objective for McObjective<'_> {
    fn cost(&self, schedule: &Schedule) -> f64 {
        self.trial_stats(schedule).makespan.mean()
    }

    fn label(&self) -> &'static str {
        "mc"
    }

    fn cost_summary(&self, schedule: &Schedule) -> CostSummary {
        let stats = self.trial_stats(schedule);
        CostSummary {
            mean: stats.makespan.mean(),
            variance: stats.makespan.variance(),
            p50: stats.tail.p50(),
            p95: stats.tail.p95(),
            p99: stats.tail.p99(),
            trials: stats.tail.count(),
        }
    }

    fn cost_quantile(&self, schedule: &Schedule, q: f64) -> f64 {
        self.trial_stats(schedule).tail.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagchkpt_core::{
        expected_makespan, optimize_checkpoints, optimize_checkpoints_with, CheckpointStrategy,
        CostRule, SweepPolicy,
    };
    use dagchkpt_dag::{generators, topo};

    fn wf() -> Workflow {
        Workflow::with_cost_rule(
            generators::chain(6),
            vec![50.0, 10.0, 40.0, 20.0, 60.0, 30.0],
            CostRule::ProportionalToWork { ratio: 0.1 },
        )
    }

    /// The MC objective is a consistent estimator: close to the analytic
    /// value, and bit-stable across repeated calls (a requirement for use
    /// inside parallel sweeps).
    #[test]
    fn mc_objective_estimates_the_analytic_value_deterministically() {
        let wf = wf();
        let model = FaultModel::new(5e-3, 1.0);
        let s = dagchkpt_core::Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let obj = McObjective::homogeneous(&wf, model, TrialSpec::new(20_000, 7));
        let a = obj.cost(&s);
        let b = obj.cost(&s);
        assert_eq!(a.to_bits(), b.to_bits(), "estimator must be deterministic");
        let exact = expected_makespan(&wf, model, &s);
        let rel = (a - exact).abs() / exact;
        assert!(rel < 0.02, "MC {a} vs analytic {exact} (rel {rel})");
        assert_eq!(obj.label(), "mc");
    }

    /// Sweeping against the MC backend lands within estimator noise of the
    /// analytic sweep on the same candidate family.
    #[test]
    fn mc_backed_sweep_tracks_the_analytic_sweep() {
        let wf = wf();
        let model = FaultModel::new(5e-3, 1.0);
        let order = topo::topological_order(wf.dag());
        let analytic = optimize_checkpoints(
            &wf,
            model,
            &order,
            CheckpointStrategy::ByDecreasingWork,
            SweepPolicy::Exhaustive,
        );
        let obj = McObjective::homogeneous(&wf, model, TrialSpec::new(20_000, 11));
        let mc = optimize_checkpoints_with(
            &wf,
            &obj,
            &order,
            CheckpointStrategy::ByDecreasingWork,
            SweepPolicy::Exhaustive,
        );
        // The MC winner, re-scored analytically, must be within noise of
        // the analytic optimum over the same candidates.
        let rescored = expected_makespan(&wf, model, &mc.schedule);
        let rel = (rescored - analytic.expected_makespan) / analytic.expected_makespan;
        assert!(
            rel.abs() < 0.05,
            "MC-backed sweep rescored {rescored} vs analytic {}",
            analytic.expected_makespan
        );
        assert_eq!(mc.evaluated, analytic.evaluated);
    }

    /// The replicated MC backend agrees with the exact set evaluator.
    #[test]
    fn replicated_mc_objective_matches_set_evaluator() {
        use dagchkpt_failure::Processor;
        let wf = wf();
        let platform = HeteroPlatform::new(
            vec![
                Processor {
                    speed: 2.0,
                    ..Processor::reference(4e-3)
                },
                Processor::reference(1e-3),
            ],
            1.0,
        )
        .unwrap();
        let s = dagchkpt_core::Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let mut sets = vec![vec![0usize, 1]; 6];
        sets[2] = vec![1]; // one non-prefix choice in the mix
        let obj = McObjective::replicated(&wf, &platform, sets.clone(), TrialSpec::new(20_000, 5));
        let mc = obj.cost(&s);
        let exact =
            dagchkpt_core::evaluate_replicated_sets(&wf, &platform, &s, &sets).expected_makespan;
        let rel = (mc - exact).abs() / exact;
        assert!(rel < 0.02, "MC {mc} vs exact {exact} (rel {rel})");
    }

    /// The summary's mean is the cost, bitwise — both run the same seeded
    /// trials — and its quantiles come from the same run's tail sketch.
    #[test]
    fn cost_summary_mean_is_cost_bitwise_and_carries_quantiles() {
        let wf = wf();
        let model = FaultModel::new(5e-3, 1.0);
        let s = dagchkpt_core::Schedule::always(&wf, topo::topological_order(wf.dag())).unwrap();
        let obj = McObjective::homogeneous(&wf, model, TrialSpec::new(4_000, 13));
        let summary = obj.cost_summary(&s);
        assert_eq!(summary.mean.to_bits(), obj.cost(&s).to_bits());
        assert_eq!(summary.trials, 4_000);
        assert!(!summary.is_mean_only());
        assert!(summary.variance > 0.0);
        // Heavy-tailed makespans: the quantile ladder is ordered and the
        // p99 sits above the mean.
        assert!(summary.p50 <= summary.p95 && summary.p95 <= summary.p99);
        assert!(summary.p99 > summary.mean);
        assert_eq!(
            obj.cost_quantile(&s, 0.99).to_bits(),
            summary.p99.to_bits(),
            "cost_quantile must agree with the summary on the same trials"
        );
    }

    /// A quantile-targeted sweep against the MC backend runs end to end
    /// and returns a schedule whose p99 key is finite and no worse than
    /// the endpoints' (it searched the same family).
    #[test]
    fn quantile_sweep_against_mc_backend_runs_end_to_end() {
        use dagchkpt_core::optimize_checkpoints_quantile;
        let wf = wf();
        let model = FaultModel::new(5e-3, 1.0);
        let order = topo::topological_order(wf.dag());
        let obj = McObjective::homogeneous(&wf, model, TrialSpec::new(4_000, 19));
        let r = optimize_checkpoints_quantile(
            &wf,
            &obj,
            &order,
            CheckpointStrategy::ByDecreasingWork,
            SweepPolicy::Exhaustive,
            0.99,
        );
        assert!(r.expected_makespan.is_finite());
        assert_eq!(r.evaluated, wf.n_tasks() + 1);
        let p99_winner = obj.cost_quantile(&r.schedule, 0.99);
        assert_eq!(p99_winner.to_bits(), r.expected_makespan.to_bits());
    }
}
