//! Monte-Carlo trial runner: many independent simulations in parallel.
//!
//! Trial results stream into per-chunk accumulators ([`Stats`] plus a
//! time-breakdown sum) as they are produced, so memory is `O(chunks)` —
//! never an `O(trials)` buffer of [`SimResult`]s. Chunk boundaries come
//! from [`rayon::fold_chunk_len`], a pure function of the trial count, and
//! accumulators merge in chunk order; the sequential path replicates the
//! exact same grouping, which is why parallel and sequential statistics are
//! bit-identical for any thread count.

use crate::quantile::QuantileSketch;
use crate::stats::Stats;
use crate::trialplan::{simulate_planned, PlannedResult, TrialPlan, TrialScratch};
use dagchkpt_core::{Schedule, Workflow};
use dagchkpt_failure::{ExponentialInjector, FaultInjector, FaultModel};
use rayon::prelude::*;

/// How many trials to run, how to seed them, and whether to fan them out
/// over the rayon thread pool.
#[derive(Debug, Clone, Copy)]
pub struct TrialSpec {
    /// Number of independent trials.
    pub trials: usize,
    /// Master seed; trial `i` is seeded with a SplitMix64 scramble of
    /// `(seed, i)` so streams are decorrelated.
    pub seed: u64,
    /// Run trials on the rayon thread pool (`true`, the default) or on the
    /// calling thread (`false`). Because every trial owns a seed derived
    /// only from `(seed, i)`, and both paths fold results into per-chunk
    /// accumulators over the same item-count-derived chunk boundaries
    /// (merged in chunk order), they produce **bit-identical** statistics
    /// — the parallel path is purely a wall-clock optimization
    /// (`tests::parallel_and_sequential_paths_are_bit_identical`).
    pub parallel: bool,
}

impl TrialSpec {
    /// `trials` trials from `seed`, fanned out over the thread pool.
    pub fn new(trials: usize, seed: u64) -> Self {
        TrialSpec {
            trials,
            seed,
            parallel: true,
        }
    }

    /// `trials` trials from `seed` on the calling thread only.
    pub fn sequential(trials: usize, seed: u64) -> Self {
        TrialSpec {
            trials,
            seed,
            parallel: false,
        }
    }

    /// Same spec with the parallelism knob set to `parallel`.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Seed for the `i`-th trial (SplitMix64 finalizer).
    pub fn trial_seed(&self, i: usize) -> u64 {
        splitmix(self.seed, i as u64)
    }

    /// Seed for processor `rank` of the `i`-th trial of a replicated run.
    /// Rank 0 gets [`TrialSpec::trial_seed`] verbatim, so the first
    /// (reference) processor's fault stream is exactly the homogeneous
    /// stream — the anchor of the degenerate-platform bit-identity — and
    /// higher ranks get decorrelated SplitMix64 scrambles.
    pub fn proc_seed(&self, i: usize, rank: usize) -> u64 {
        let s = self.trial_seed(i);
        if rank == 0 {
            s
        } else {
            splitmix(s, rank as u64)
        }
    }
}

/// SplitMix64 finalizer over `(seed, i)`.
fn splitmix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Aggregate over trials.
#[derive(Debug, Clone)]
pub struct TrialStats {
    /// Makespan statistics.
    pub makespan: Stats,
    /// Fault-count statistics.
    pub faults: Stats,
    /// Mean time breakdown (work, rework, recovery, checkpoint, wasted,
    /// downtime), averaged over trials. All `NaN` when zero trials were
    /// run — coherent with [`Stats::mean`], which is also `NaN` when
    /// empty.
    pub mean_breakdown: [f64; 6],
    /// Makespan tail sketch (p50/p95/p99); all-`NaN` quantiles when zero
    /// trials were run, matching the `NaN` means above.
    pub tail: QuantileSketch,
}

/// Per-chunk streaming accumulator: two [`Stats`], the tail sketch, plus
/// the running breakdown sum. `O(1)` per chunk, merged in chunk order.
#[derive(Debug, Clone)]
struct TrialAccum {
    makespan: Stats,
    faults: Stats,
    breakdown: [f64; 6],
    tail: QuantileSketch,
}

impl TrialAccum {
    /// The fold identity: everything empty.
    fn identity() -> Self {
        TrialAccum {
            makespan: Stats::new(),
            faults: Stats::new(),
            breakdown: [0.0; 6],
            tail: QuantileSketch::new(),
        }
    }

    /// Builds one chunk's accumulator from its buffered samples in one
    /// batched pass per field. Field-major consumption is bit-identical to
    /// the historical per-trial interleaved pushes: each field's stream
    /// sees exactly the same values in the same order, and the fields
    /// never read each other.
    fn from_chunk(samples: &ChunkSamples) -> Self {
        let mut acc = TrialAccum::identity();
        acc.makespan.push_slice(&samples.makespans);
        acc.faults.push_slice(&samples.faults);
        acc.tail.push_slice(&samples.makespans);
        acc.breakdown = samples.breakdown;
        acc
    }

    /// Merges a later chunk's accumulator (order-sensitive in the last
    /// floating-point bits, hence always called in chunk order).
    fn merge(mut self, other: TrialAccum) -> Self {
        self.makespan = self.makespan.merge(other.makespan);
        self.faults = self.faults.merge(other.faults);
        self.tail = self.tail.merge(other.tail);
        for (a, b) in self.breakdown.iter_mut().zip(other.breakdown) {
            *a += b;
        }
        self
    }

    /// Final aggregate; the empty case yields `NaN` means throughout.
    fn into_trial_stats(self) -> TrialStats {
        let n = self.makespan.n();
        let mean_breakdown = if n == 0 {
            [f64::NAN; 6]
        } else {
            self.breakdown.map(|v| v / n as f64)
        };
        TrialStats {
            makespan: self.makespan,
            faults: self.faults,
            mean_breakdown,
            tail: self.tail,
        }
    }
}

/// Sequential twin of the executor's chunked `fold(..).reduce(..)`: the
/// same [`rayon::fold_chunk_len`] boundaries, per-chunk accumulation, and
/// in-order merge — the bit-identity anchor for
/// `TrialSpec { parallel: false }`.
pub(crate) fn fold_sequential_chunks<A>(
    n: usize,
    identity: impl Fn() -> A,
    push: impl Fn(A, usize) -> A,
    merge: impl Fn(A, A) -> A,
) -> A {
    let chunk = rayon::fold_chunk_len(n);
    let mut merged = identity();
    let mut lo = 0;
    while lo < n {
        let hi = (lo + chunk).min(n);
        let mut acc = identity();
        for i in lo..hi {
            acc = push(acc, i);
        }
        merged = merge(merged, acc);
        lo = hi;
    }
    merged
}

/// Sequential twin of the executor's `fold_chunk_states(..).reduce(..)`:
/// the same [`rayon::fold_chunk_len`] boundaries, one `init()` state per
/// chunk, and the in-order merge — the bit-identity anchor of the scratch
/// fast path for `TrialSpec { parallel: false }`.
pub(crate) fn fold_sequential_chunk_states<St, A>(
    n: usize,
    init: impl Fn() -> St,
    step: impl Fn(&mut St, usize),
    finish: impl Fn(St) -> A,
    identity: impl Fn() -> A,
    merge: impl Fn(A, A) -> A,
) -> A {
    let chunk = rayon::fold_chunk_len(n);
    let mut merged = identity();
    let mut lo = 0;
    while lo < n {
        let hi = (lo + chunk).min(n);
        let mut state = init();
        for i in lo..hi {
            step(&mut state, i);
        }
        merged = merge(merged, finish(state));
        lo = hi;
    }
    merged
}

/// One fold chunk's buffered trial results, stored field-major so the
/// end-of-chunk flush feeds each accumulator a contiguous slice
/// ([`Stats::push_slice`] / [`QuantileSketch::push_slice`]). Buffers are
/// sized to the fold-chunk length up front, so per-trial pushes never
/// reallocate.
pub(crate) struct ChunkSamples {
    makespans: Vec<f64>,
    faults: Vec<f64>,
    breakdown: [f64; 6],
}

impl ChunkSamples {
    fn with_capacity(cap: usize) -> Self {
        ChunkSamples {
            makespans: Vec::with_capacity(cap),
            faults: Vec::with_capacity(cap),
            breakdown: [0.0; 6],
        }
    }

    fn push(&mut self, r: PlannedResult) {
        self.makespans.push(r.makespan);
        self.faults.push(r.n_faults as f64);
        for (acc, v) in self.breakdown.iter_mut().zip([
            r.time_work,
            r.time_rework,
            r.time_recovery,
            r.time_checkpoint,
            r.time_wasted,
            r.time_downtime,
        ]) {
            *acc += v;
        }
    }
}

/// The scratch-arena aggregation spine shared by the blocking, replicated
/// and tenant-inner fast paths: `make_scratch()` builds one per-worker
/// scratch per fold chunk (the executor's chunk-scoped init), `run_one`
/// executes trial `i` through it, and results buffer into field-major
/// [`ChunkSamples`] flushed through the batched accumulators at chunk end.
/// Chunk boundaries and the chunk-ordered merge are identical to the
/// historical per-item fold, so the statistics are bit-identical to what
/// the reference path produced — for any `RAYON_NUM_THREADS` and for the
/// sequential path.
pub(crate) fn planned_result_stats<St, IF, F>(
    spec: TrialSpec,
    make_scratch: IF,
    run_one: F,
) -> TrialStats
where
    St: Send,
    IF: Fn() -> St + Sync,
    F: Fn(&mut St, usize) -> PlannedResult + Sync,
{
    let cap = rayon::fold_chunk_len(spec.trials);
    let init = || (make_scratch(), ChunkSamples::with_capacity(cap));
    let step = |state: &mut (St, ChunkSamples), i: usize| {
        let r = run_one(&mut state.0, i);
        state.1.push(r);
    };
    let finish = |state: (St, ChunkSamples)| TrialAccum::from_chunk(&state.1);
    let acc = if spec.parallel {
        (0..spec.trials)
            .into_par_iter()
            .fold_chunk_states(init, step, finish)
            .reduce(TrialAccum::identity, TrialAccum::merge)
    } else {
        fold_sequential_chunk_states(
            spec.trials,
            init,
            step,
            finish,
            TrialAccum::identity,
            TrialAccum::merge,
        )
    };
    acc.into_trial_stats()
}

/// Scratch-arena twin of [`trial_metric_tail_stats`]: one per-chunk
/// scratch, per-chunk metric buffers, batched flush. Bit-identical to the
/// per-item fold for the same metric stream.
pub(crate) fn planned_metric_tail_stats<St, IF, F>(
    spec: TrialSpec,
    make_scratch: IF,
    metric: F,
) -> (Stats, QuantileSketch)
where
    St: Send,
    IF: Fn() -> St + Sync,
    F: Fn(&mut St, usize) -> f64 + Sync,
{
    let cap = rayon::fold_chunk_len(spec.trials);
    let init = || (make_scratch(), Vec::with_capacity(cap));
    let step = |state: &mut (St, Vec<f64>), i: usize| {
        let x = metric(&mut state.0, i);
        state.1.push(x);
    };
    let finish = |state: (St, Vec<f64>)| {
        let mut stats = Stats::new();
        stats.push_slice(&state.1);
        let mut tail = QuantileSketch::new();
        tail.push_slice(&state.1);
        (stats, tail)
    };
    let identity = || (Stats::new(), QuantileSketch::new());
    let merge =
        |a: (Stats, QuantileSketch), b: (Stats, QuantileSketch)| (a.0.merge(b.0), a.1.merge(b.1));
    if spec.parallel {
        (0..spec.trials)
            .into_par_iter()
            .fold_chunk_states(init, step, finish)
            .reduce(identity, merge)
    } else {
        fold_sequential_chunk_states(spec.trials, init, step, finish, identity, merge)
    }
}

/// Runs `spec.trials` simulations under the exponential `model`
/// (`λ`, downtime `D` taken from the model), in parallel.
pub fn run_trials(
    wf: &Workflow,
    schedule: &Schedule,
    model: FaultModel,
    spec: TrialSpec,
) -> TrialStats {
    run_trials_with(wf, schedule, model.downtime(), spec, |seed| {
        ExponentialInjector::new(model.lambda(), seed)
    })
}

/// Generic trial runner: `make_injector(seed)` builds the fault source for
/// each trial (exponential, Weibull, traces, …).
///
/// Runs on the zero-allocation fast path: the [`TrialPlan`] is compiled
/// once per call, each fold chunk gets one [`TrialScratch`], and every
/// trial executes [`simulate_planned`] — bit-identical to the reference
/// [`crate::engine::simulate`] (see `trialplan`'s differential tests), so
/// results are unchanged from the historical per-trial path.
///
/// With `spec.trials == 0` the aggregate is coherently empty: both [`Stats`]
/// have `n() == 0` (so their means are `NaN`) and `mean_breakdown` is all
/// `NaN`.
pub fn run_trials_with<I, F>(
    wf: &Workflow,
    schedule: &Schedule,
    downtime: f64,
    spec: TrialSpec,
    make_injector: F,
) -> TrialStats
where
    I: FaultInjector,
    F: Fn(u64) -> I + Sync,
{
    let plan = TrialPlan::compile(wf, schedule);
    planned_result_stats(
        spec,
        || TrialScratch::new(plan.n_tasks()),
        |scratch, i| {
            let mut inj = make_injector(spec.trial_seed(i));
            simulate_planned(&plan, scratch, &mut inj, downtime)
        },
    )
}

/// Folds an arbitrary per-trial metric into [`Stats`] with the same
/// deterministic chunk grouping as [`run_trials_with`]: `metric(i)` runs
/// for every `i ∈ 0..spec.trials` (in parallel when `spec.parallel`), and
/// per-chunk accumulators merge in chunk order, so the result is
/// bit-identical for any thread count and for the sequential path.
pub fn trial_metric_stats<F>(spec: TrialSpec, metric: F) -> Stats
where
    F: Fn(usize) -> f64 + Sync,
{
    trial_metric_tail_stats(spec, metric).0
}

/// [`trial_metric_stats`] plus the tail sketch of the same metric stream:
/// one fold produces both the moment statistics and the p50/p95/p99
/// sketch, with the identical deterministic chunk grouping (the [`Stats`]
/// half is bit-identical to what [`trial_metric_stats`] returned before
/// the sketch existed — the sketch rides in the same accumulator without
/// touching the moment arithmetic).
pub fn trial_metric_tail_stats<F>(spec: TrialSpec, metric: F) -> (Stats, QuantileSketch)
where
    F: Fn(usize) -> f64 + Sync,
{
    let identity = || (Stats::new(), QuantileSketch::new());
    let push = |mut acc: (Stats, QuantileSketch), x: f64| {
        acc.0.push(x);
        acc.1.push(x);
        acc
    };
    let merge =
        |a: (Stats, QuantileSketch), b: (Stats, QuantileSketch)| (a.0.merge(b.0), a.1.merge(b.1));
    if spec.parallel {
        (0..spec.trials)
            .into_par_iter()
            .map(&metric)
            .fold(identity, push)
            .reduce(identity, merge)
    } else {
        fold_sequential_chunks(spec.trials, identity, |acc, i| push(acc, metric(i)), merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use dagchkpt_core::{evaluator, CostRule};
    use dagchkpt_dag::{generators, topo, FixedBitSet};
    use dagchkpt_failure::NoFaults;

    #[test]
    fn trial_seeds_are_distinct_and_deterministic() {
        let spec = TrialSpec::new(1000, 42);
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|i| spec.trial_seed(i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_eq!(spec.trial_seed(7), TrialSpec::new(1000, 42).trial_seed(7));
        assert_ne!(spec.trial_seed(7), TrialSpec::new(1000, 43).trial_seed(7));
    }

    /// Satellite fix: zero trials used to report a contradictory aggregate
    /// (all-zero breakdown next to a NaN makespan mean); now every mean is
    /// NaN and the counts are 0, on both paths.
    #[test]
    fn zero_trials_yield_a_coherent_empty_aggregate() {
        let wf = Workflow::uniform(generators::chain(3), 10.0, 1.0);
        let order = topo::topological_order(wf.dag());
        let s = Schedule::always(&wf, order).unwrap();
        for spec in [TrialSpec::new(0, 1), TrialSpec::sequential(0, 1)] {
            let stats = run_trials_with(&wf, &s, 0.0, spec, |_| NoFaults);
            assert_eq!(stats.makespan.n(), 0);
            assert_eq!(stats.faults.n(), 0);
            assert!(stats.makespan.mean().is_nan());
            assert!(stats.faults.mean().is_nan());
            assert!(
                stats.mean_breakdown.iter().all(|v| v.is_nan()),
                "breakdown must be NaN when no trials ran: {:?}",
                stats.mean_breakdown
            );
            assert_eq!(stats.tail.count(), 0);
            assert!(
                stats.tail.p50().is_nan() && stats.tail.p95().is_nan() && stats.tail.p99().is_nan(),
                "empty tail sketch must report NaN quantiles"
            );
        }
    }

    #[test]
    fn trial_metric_stats_matches_run_trials_makespan() {
        let wf = Workflow::uniform(generators::fork_join(4), 10.0, 1.0);
        let order = topo::topological_order(wf.dag());
        let s = Schedule::always(&wf, order).unwrap();
        let model = FaultModel::new(3e-3, 1.0);
        for spec in [TrialSpec::new(512, 5), TrialSpec::sequential(512, 5)] {
            let direct = run_trials(&wf, &s, model, spec);
            let via_metric = trial_metric_stats(spec, |i| {
                let mut inj = ExponentialInjector::new(model.lambda(), spec.trial_seed(i));
                simulate(
                    &wf,
                    &s,
                    &mut inj,
                    SimConfig {
                        downtime: model.downtime(),
                        record_trace: false,
                    },
                )
                .makespan
            });
            assert_eq!(
                direct.makespan.mean().to_bits(),
                via_metric.mean().to_bits()
            );
            assert_eq!(
                direct.makespan.stddev().to_bits(),
                via_metric.stddev().to_bits()
            );
            assert_eq!(direct.makespan.n(), via_metric.n());
        }
    }

    #[test]
    fn fault_free_trials_are_deterministic() {
        let wf = Workflow::uniform(generators::fork_join(4), 10.0, 1.0);
        let order = topo::topological_order(wf.dag());
        let s = Schedule::always(&wf, order).unwrap();
        let stats = run_trials_with(&wf, &s, 0.0, TrialSpec::new(16, 1), |_| NoFaults);
        assert_eq!(stats.makespan.n(), 16);
        assert!(stats.makespan.stddev() < 1e-12);
        assert!((stats.makespan.mean() - 66.0).abs() < 1e-9); // 6·10 + 6·1
        assert_eq!(stats.faults.mean(), 0.0);
    }

    /// The headline cross-validation: the Monte-Carlo mean converges to the
    /// Theorem-3 analytic value.
    #[test]
    fn monte_carlo_matches_analytic_evaluator() {
        let cases: Vec<(Workflow, f64)> = vec![
            (
                Workflow::with_cost_rule(
                    generators::paper_figure1(),
                    vec![10.0, 20.0, 5.0, 30.0, 8.0, 12.0, 25.0, 9.0],
                    CostRule::ProportionalToWork { ratio: 0.1 },
                ),
                2e-3,
            ),
            (Workflow::uniform(generators::chain(6), 15.0, 1.5), 4e-3),
            (Workflow::uniform(generators::grid(3, 3), 8.0, 0.8), 3e-3),
        ];
        for (idx, (wf, lambda)) in cases.into_iter().enumerate() {
            let model = FaultModel::new(lambda, 2.0);
            let n = wf.n_tasks();
            let order = topo::topological_order(wf.dag());
            let ckpt = FixedBitSet::from_indices(n, (0..n).filter(|i| i % 2 == 0));
            let s = Schedule::new(&wf, order, ckpt).unwrap();
            let report = evaluator::evaluate(&wf, model, &s);
            let analytic = report.expected_makespan;
            let stats = run_trials(&wf, &s, model, TrialSpec::new(40_000, 7 + idx as u64));
            let diff = (stats.makespan.mean() - analytic).abs();
            // 5 standard errors: ~1-in-2M false-failure rate per case.
            assert!(
                diff <= 5.0 * stats.makespan.sem(),
                "case {idx}: MC {} ± {} vs analytic {analytic}",
                stats.makespan.mean(),
                stats.makespan.sem()
            );
            // The analytic expected fault count must match the injector's.
            let fdiff = (stats.faults.mean() - report.expected_faults).abs();
            assert!(
                fdiff <= 5.0 * stats.faults.sem(),
                "case {idx}: MC faults {} ± {} vs analytic {}",
                stats.faults.mean(),
                stats.faults.sem(),
                report.expected_faults
            );
        }
    }

    /// The acceptance property of the `parallel` knob: for a fixed seed the
    /// parallel and sequential paths produce bit-identical statistics,
    /// regardless of thread count or scheduling.
    #[test]
    fn parallel_and_sequential_paths_are_bit_identical() {
        let wf = Workflow::with_cost_rule(
            generators::paper_figure1(),
            vec![10.0, 20.0, 5.0, 30.0, 8.0, 12.0, 25.0, 9.0],
            CostRule::ProportionalToWork { ratio: 0.1 },
        );
        let model = FaultModel::new(4e-3, 1.5);
        let order = topo::topological_order(wf.dag());
        let ckpt = FixedBitSet::from_indices(8, [0usize, 3, 5]);
        let s = Schedule::new(&wf, order, ckpt).unwrap();
        let par = run_trials(&wf, &s, model, TrialSpec::new(3_000, 17));
        let seq = run_trials(&wf, &s, model, TrialSpec::sequential(3_000, 17));
        assert_eq!(par.makespan.n(), seq.makespan.n());
        assert_eq!(par.makespan.mean().to_bits(), seq.makespan.mean().to_bits());
        assert_eq!(
            par.makespan.stddev().to_bits(),
            seq.makespan.stddev().to_bits()
        );
        assert_eq!(par.makespan.min().to_bits(), seq.makespan.min().to_bits());
        assert_eq!(par.makespan.max().to_bits(), seq.makespan.max().to_bits());
        assert_eq!(par.faults.mean().to_bits(), seq.faults.mean().to_bits());
        for (a, b) in par.mean_breakdown.iter().zip(seq.mean_breakdown.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The tail sketch obeys the same contract: identical chunk
        // boundaries + chunk-ordered merge ⇒ bit-identical marker state.
        assert_eq!(par.tail, seq.tail);
        assert_eq!(par.tail.p50().to_bits(), seq.tail.p50().to_bits());
        assert_eq!(par.tail.p99().to_bits(), seq.tail.p99().to_bits());
        // And the knob round-trips through the builder.
        assert!(TrialSpec::new(5, 1).parallel);
        assert!(!TrialSpec::new(5, 1).with_parallel(false).parallel);
    }

    /// The sketch-extended thread-invariance guarantee, exercised
    /// in-process: the vendored executor reads `RAYON_NUM_THREADS` at
    /// every dispatch, so running the same seeded trials under pools of
    /// 1, 2 and 8 workers must produce bit-identical statistics *and*
    /// bit-identical tail sketches. (Concurrently running tests only see
    /// their pool size change mid-run, which the guarantee explicitly
    /// covers — results never depend on the worker count.)
    #[test]
    fn tail_sketch_is_bit_identical_across_thread_counts() {
        let wf = Workflow::uniform(generators::chain(5), 12.0, 1.2);
        let order = topo::topological_order(wf.dag());
        let s = Schedule::always(&wf, order).unwrap();
        let model = FaultModel::new(4e-3, 1.0);
        let saved = std::env::var("RAYON_NUM_THREADS").ok();
        let runs: Vec<TrialStats> = ["1", "2", "8"]
            .iter()
            .map(|n| {
                std::env::set_var("RAYON_NUM_THREADS", n);
                run_trials(&wf, &s, model, TrialSpec::new(2_048, 23))
            })
            .collect();
        match saved {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        for r in &runs[1..] {
            assert_eq!(
                r.makespan.mean().to_bits(),
                runs[0].makespan.mean().to_bits()
            );
            assert_eq!(r.tail, runs[0].tail, "sketch state must not move");
            assert_eq!(r.tail.p95().to_bits(), runs[0].tail.p95().to_bits());
        }
    }

    #[test]
    fn breakdown_means_sum_to_makespan_mean() {
        let wf = Workflow::uniform(generators::parallel_chains(3, 3), 12.0, 1.2);
        let order = topo::topological_order(wf.dag());
        let s = Schedule::always(&wf, order).unwrap();
        let model = FaultModel::new(3e-3, 1.0);
        let stats = run_trials(&wf, &s, model, TrialSpec::new(2_000, 99));
        let sum: f64 = stats.mean_breakdown.iter().sum();
        assert!(
            (sum - stats.makespan.mean()).abs() < 1e-6 * stats.makespan.mean(),
            "breakdown {sum} vs mean {}",
            stats.makespan.mean()
        );
    }
}
