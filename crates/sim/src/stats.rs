//! Streaming statistics (Welford) with parallel merge.

use serde::{map_get, DeError, Deserialize, Serialize, Value};

/// Mean/variance/extrema accumulator with numerically stable updates and a
/// merge operation for parallel reduction.
///
/// Serialization is implemented by hand rather than derived: the empty
/// accumulator's extrema sentinels are `min = +∞` / `max = −∞`, which JSON
/// cannot represent (`serde_json` writes non-finite floats as `null`, which
/// a derived deserializer then rejects). The manual impls write non-finite
/// extrema as `null` and restore the matching sentinel on read, so every
/// accumulator — including the empty one — survives a
/// serialize → deserialize round trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Serialize for Stats {
    fn to_value(&self) -> Value {
        // JSON has no ±inf: write the (empty-accumulator) sentinels as
        // null; `Deserialize` below restores them.
        let extremum = |x: f64| {
            if x.is_finite() {
                Value::Float(x)
            } else {
                Value::Null
            }
        };
        Value::Map(vec![
            ("n".to_string(), self.n.to_value()),
            ("mean".to_string(), Value::Float(self.mean)),
            ("m2".to_string(), Value::Float(self.m2)),
            ("min".to_string(), extremum(self.min)),
            ("max".to_string(), extremum(self.max)),
        ])
    }
}

impl Deserialize for Stats {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::expected("map", "Stats", v))?;
        let field = |name: &str| {
            map_get(entries, name).ok_or_else(|| DeError::missing_field(name, "Stats"))
        };
        let min = match field("min")? {
            Value::Null => f64::INFINITY,
            other => f64::from_value(other)?,
        };
        let max = match field("max")? {
            Value::Null => f64::NEG_INFINITY,
            other => f64::from_value(other)?,
        };
        Ok(Stats {
            n: u64::from_value(field("n")?)?,
            mean: f64::from_value(field("mean")?)?,
            m2: f64::from_value(field("m2")?)?,
            min,
            max,
        })
    }
}

impl Default for Stats {
    fn default() -> Self {
        Self::new()
    }
}

impl Stats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Stats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a chunk of observations in slice order — bit-identical to
    /// pushing them one by one, but with the accumulator fields hoisted
    /// into locals so the whole chunk runs register-to-register (the
    /// batched consumer the Monte-Carlo fast path feeds per-chunk sample
    /// buffers through).
    pub fn push_slice(&mut self, xs: &[f64]) {
        let (mut n, mut mean, mut m2) = (self.n, self.mean, self.m2);
        let (mut min, mut max) = (self.min, self.max);
        for &x in xs {
            n += 1;
            let d = x - mean;
            mean += d / n as f64;
            m2 += d * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        *self = Stats {
            n,
            mean,
            m2,
            min,
            max,
        };
    }

    /// Merges another accumulator (Chan et al. parallel variance).
    pub fn merge(mut self, other: Stats) -> Stats {
        if other.n == 0 {
            return self;
        }
        if self.n == 0 {
            return other;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.mean += d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        self.stddev() / (self.n as f64).sqrt()
    }

    /// Half-width of the 95 % normal confidence interval of the mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_moments() {
        let mut s = Stats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.n(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let s = Stats::new();
        assert!(s.mean().is_nan());
        let mut s1 = Stats::new();
        s1.push(3.0);
        assert_eq!(s1.mean(), 3.0);
        assert!(s1.variance().is_nan());
    }

    /// Satellite fix: the empty accumulator's ±inf extrema have no JSON
    /// representation; the manual serde impls write them as null and
    /// restore them, so text round trips work for every state.
    #[test]
    fn json_roundtrip_including_empty_and_singleton() {
        let mut single = Stats::new();
        single.push(42.5);
        let mut many = Stats::new();
        for x in [2.0, -7.25, 11.0, 0.5] {
            many.push(x);
        }
        for (name, s) in [("empty", Stats::new()), ("single", single), ("many", many)] {
            let json = serde_json::to_string(&s).unwrap();
            let back: Stats = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s, "{name}: {json}");
        }
        // The empty case really does hit the null path.
        let json = serde_json::to_string(&Stats::new()).unwrap();
        assert!(json.contains("\"min\":null"), "{json}");
        assert!(json.contains("\"max\":null"), "{json}");
        // A single observation keeps exact extrema.
        let json = serde_json::to_string(&single).unwrap();
        assert!(json.contains("\"min\":42.5"), "{json}");
    }

    proptest! {
        /// The fast path's batched consumer must not move a single bit
        /// relative to the scalar `push` loop it replaces.
        #[test]
        fn push_slice_is_bit_identical_to_scalar_pushes(
            head in proptest::collection::vec(-1e6f64..1e6, 0..40),
            tail in proptest::collection::vec(-1e6f64..1e6, 0..40),
        ) {
            let mut scalar = Stats::new();
            for &x in head.iter().chain(&tail) { scalar.push(x); }
            let mut batched = Stats::new();
            batched.push_slice(&head);
            batched.push_slice(&tail);
            prop_assert_eq!(scalar.n(), batched.n());
            prop_assert_eq!(scalar.mean.to_bits(), batched.mean.to_bits());
            prop_assert_eq!(scalar.m2.to_bits(), batched.m2.to_bits());
            prop_assert_eq!(scalar.min.to_bits(), batched.min.to_bits());
            prop_assert_eq!(scalar.max.to_bits(), batched.max.to_bits());
        }

        #[test]
        fn merge_equals_sequential(
            a in proptest::collection::vec(-100.0f64..100.0, 0..60),
            b in proptest::collection::vec(-100.0f64..100.0, 0..60),
        ) {
            let mut whole = Stats::new();
            for &x in a.iter().chain(&b) { whole.push(x); }
            let mut sa = Stats::new();
            for &x in &a { sa.push(x); }
            let mut sb = Stats::new();
            for &x in &b { sb.push(x); }
            let merged = sa.merge(sb);
            prop_assert_eq!(whole.n(), merged.n());
            if whole.n() > 0 {
                prop_assert!((whole.mean() - merged.mean()).abs() < 1e-9);
                prop_assert_eq!(whole.min(), merged.min());
                prop_assert_eq!(whole.max(), merged.max());
            }
            if whole.n() > 1 {
                prop_assert!((whole.variance() - merged.variance()).abs() < 1e-7);
            }
        }
    }
}
