//! Streaming statistics (Welford) with parallel merge.

use serde::{Deserialize, Serialize};

/// Mean/variance/extrema accumulator with numerically stable updates and a
/// merge operation for parallel reduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Stats {
    fn default() -> Self {
        Self::new()
    }
}

impl Stats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Stats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (Chan et al. parallel variance).
    pub fn merge(mut self, other: Stats) -> Stats {
        if other.n == 0 {
            return self;
        }
        if self.n == 0 {
            return other;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.mean += d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        self.stddev() / (self.n as f64).sqrt()
    }

    /// Half-width of the 95 % normal confidence interval of the mean.
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_moments() {
        let mut s = Stats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.n(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let s = Stats::new();
        assert!(s.mean().is_nan());
        let mut s1 = Stats::new();
        s1.push(3.0);
        assert_eq!(s1.mean(), 3.0);
        assert!(s1.variance().is_nan());
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(
            a in proptest::collection::vec(-100.0f64..100.0, 0..60),
            b in proptest::collection::vec(-100.0f64..100.0, 0..60),
        ) {
            let mut whole = Stats::new();
            for &x in a.iter().chain(&b) { whole.push(x); }
            let mut sa = Stats::new();
            for &x in &a { sa.push(x); }
            let mut sb = Stats::new();
            for &x in &b { sb.push(x); }
            let merged = sa.merge(sb);
            prop_assert_eq!(whole.n(), merged.n());
            if whole.n() > 0 {
                prop_assert!((whole.mean() - merged.mean()).abs() < 1e-9);
                prop_assert_eq!(whole.min(), merged.min());
                prop_assert_eq!(whole.max(), merged.max());
            }
            if whole.n() > 1 {
                prop_assert!((whole.variance() - merged.variance()).abs() < 1e-7);
            }
        }
    }
}
