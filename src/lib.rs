//! # dagchkpt
//!
//! A reproduction, as a production-quality Rust library, of
//! *“Scheduling computational workflows on failure-prone platforms”*
//! (Aupy, Benoit, Casanova, Robert — INRIA RR-8609 / IPDPS 2015).
//!
//! A workflow DAG of tightly-coupled parallel tasks runs on a platform with
//! exponentially distributed failures. Each task `T_i` takes `w_i` seconds,
//! can checkpoint its output in `c_i` seconds, and recover it in `r_i`
//! seconds. A **schedule** fixes the task order (a linearization) and the
//! checkpointed subset; the goal is to minimize the expected makespan.
//!
//! The crate re-exports the full workspace:
//!
//! * [`dag`] — DAG substrate (topology, traversals, generators, DOT/JSON);
//! * [`failure`] — fault models, Equation (1), fault injectors;
//! * [`core`] — the paper's algorithms: the Theorem-3 expected-makespan
//!   evaluator, DF/BF/RF linearizations, the six checkpoint strategies,
//!   fork/join/chain exact solvers, and the NP-completeness reduction;
//! * [`sim`] — a Monte-Carlo simulator that validates the analytics;
//! * [`workflows`] — Pegasus-like Montage / LIGO / CyberShake / Genome
//!   generators matching the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use dagchkpt::prelude::*;
//!
//! // A four-task diamond: T0 feeds T1 and T2, which feed T3.
//! let mut b = DagBuilder::new(4);
//! b.add_edge(0usize, 1usize);
//! b.add_edge(0usize, 2usize);
//! b.add_edge(1usize, 3usize);
//! b.add_edge(2usize, 3usize);
//! let dag = b.build().unwrap();
//!
//! // Weights in seconds; checkpoint = recovery = 10% of the weight.
//! let wf = Workflow::with_cost_rule(
//!     dag,
//!     vec![60.0, 30.0, 45.0, 20.0],
//!     CostRule::ProportionalToWork { ratio: 0.1 },
//! );
//!
//! // Platform: MTBF 1000 s, no downtime.
//! let model = FaultModel::new(1e-3, 0.0);
//!
//! // Run the paper's best heuristic (DF linearization + CkptW sweep).
//! let h = Heuristic {
//!     lin: LinearizationStrategy::DepthFirst,
//!     ckpt: CheckpointStrategy::ByDecreasingWork,
//! };
//! let result = run_heuristic(&wf, model, h, SweepPolicy::Exhaustive);
//! assert!(result.expected_makespan >= wf.total_work());
//!
//! // Cross-check the analytic expectation by simulation.
//! let stats = dagchkpt::sim::run_trials(
//!     &wf, &result.schedule, model, dagchkpt::sim::TrialSpec::new(2000, 42));
//! let z = (stats.makespan.mean() - result.expected_makespan)
//!     / stats.makespan.sem();
//! assert!(z.abs() < 5.0);
//! ```

pub use dagchkpt_core as core;
pub use dagchkpt_dag as dag;
pub use dagchkpt_failure as failure;
pub use dagchkpt_sim as sim;
pub use dagchkpt_workflows as workflows;

/// The most commonly used items in one import.
pub mod prelude {
    pub use dagchkpt_core::{
        evaluate, expected_makespan, linearize, optimize_checkpoints, run_all, run_heuristic,
        CheckpointStrategy, CostRule, Heuristic, LinearizationStrategy, Schedule, SweepPolicy,
        TaskCosts, Workflow,
    };
    pub use dagchkpt_dag::{Dag, DagBuilder, FixedBitSet, NodeId};
    pub use dagchkpt_failure::{FaultModel, Platform};
    pub use dagchkpt_sim::{run_trials, simulate, SimConfig, TrialSpec};
    pub use dagchkpt_workflows::PegasusKind;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_whole_pipeline() {
        let wf = PegasusKind::Montage.generate(50, CostRule::ProportionalToWork { ratio: 0.1 }, 1);
        let model = FaultModel::new(1e-3, 0.0);
        let results = run_all(&wf, model, SweepPolicy::Exhaustive, 1);
        assert_eq!(results.len(), 14);
    }
}
