//! `dagchkpt` — command-line front end to the library.
//!
//! ```text
//! dagchkpt generate --kind montage -n 100 [--rule 0.1w] [--seed 42]
//!                   [--out wf.json] [--dot wf.dot]
//! dagchkpt solve    (--kind K -n N | --workflow wf.json) --lambda 1e-3
//!                   [--downtime 0] [--heuristic DF-CkptW | all]
//!                   [--seed 42] [--out schedule.json]
//! dagchkpt eval     --workflow wf.json --schedule schedule.json
//!                   --lambda 1e-3 [--downtime 0]
//! dagchkpt simulate --workflow wf.json --schedule schedule.json
//!                   --lambda 1e-3 [--downtime 0] [--trials 10000]
//!                   [--seed 42] [--weibull-shape 0.7]
//! ```
//!
//! Workflows are exchanged as `WorkflowSpec` JSON, schedules as `Schedule`
//! JSON (both produced and consumed by this tool).

use dagchkpt::dag::dot::{to_dot, DotOptions};
use dagchkpt::failure::WeibullInjector;
use dagchkpt::prelude::*;
use dagchkpt::sim::run_trials_with;
use dagchkpt::workflows::WorkflowSpec;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  dagchkpt generate --kind montage|ligo|cybershake|genome -n N \\
                    [--rule 0.1w|0.01w|5s|10s] [--seed S] [--out FILE] [--dot FILE]
  dagchkpt solve    (--kind K -n N | --workflow FILE) --lambda L \\
                    [--downtime D] [--heuristic NAME|all] [--seed S] [--out FILE]
  dagchkpt eval     --workflow FILE --schedule FILE --lambda L [--downtime D]
  dagchkpt simulate --workflow FILE --schedule FILE --lambda L [--downtime D] \\
                    [--trials T] [--seed S] [--weibull-shape SH]";

/// Splits `args` into flag → value pairs (all our flags take a value).
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) else {
            return Err(format!("unexpected argument: {a}"));
        };
        let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), v.clone());
    }
    Ok(flags)
}

fn req<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing --{name}"))
}

fn parse_f64(s: &str, what: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("bad {what}: {s}"))
}

fn parse_kind(s: &str) -> Result<PegasusKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "montage" => Ok(PegasusKind::Montage),
        "ligo" => Ok(PegasusKind::Ligo),
        "cybershake" => Ok(PegasusKind::CyberShake),
        "genome" => Ok(PegasusKind::Genome),
        other => Err(format!("unknown kind: {other}")),
    }
}

fn parse_rule(s: &str) -> Result<CostRule, String> {
    if let Some(ratio) = s.strip_suffix('w') {
        Ok(CostRule::ProportionalToWork {
            ratio: parse_f64(ratio, "rule ratio")?,
        })
    } else if let Some(v) = s.strip_suffix('s') {
        Ok(CostRule::Constant {
            value: parse_f64(v, "rule constant")?,
        })
    } else {
        Err(format!("bad cost rule (want e.g. 0.1w or 5s): {s}"))
    }
}

fn parse_heuristic(s: &str) -> Result<Heuristic, String> {
    let (lin, ckpt) = s
        .split_once('-')
        .ok_or_else(|| format!("bad heuristic: {s}"))?;
    let lin = match lin {
        "DF" => LinearizationStrategy::DepthFirst,
        "BF" => LinearizationStrategy::BreadthFirst,
        "RF" => LinearizationStrategy::RandomFirst { seed: 42 },
        other => return Err(format!("unknown linearization: {other}")),
    };
    let ckpt = match ckpt {
        "CkptNvr" => CheckpointStrategy::Never,
        "CkptAlws" => CheckpointStrategy::Always,
        "CkptW" => CheckpointStrategy::ByDecreasingWork,
        "CkptC" => CheckpointStrategy::ByIncreasingCkptCost,
        "CkptD" => CheckpointStrategy::ByDecreasingOutweight,
        "CkptPer" => CheckpointStrategy::Periodic,
        "CkptH" => CheckpointStrategy::ByDecreasingWorkOverCost,
        other => return Err(format!("unknown checkpoint strategy: {other}")),
    };
    Ok(Heuristic { lin, ckpt })
}

fn load_workflow(path: &str) -> Result<Workflow, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec = WorkflowSpec::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    spec.build()
        .map_err(|e| format!("building workflow from {path}: {e}"))
}

fn load_schedule(path: &str, wf: &Workflow) -> Result<Schedule, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let s: Schedule = serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    // Re-validate against this workflow.
    Schedule::new(wf, s.order().to_vec(), s.checkpoints().clone())
        .map_err(|e| format!("schedule invalid for workflow: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("no command".into());
    };
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "generate" => generate(&flags),
        "solve" => solve(&flags),
        "eval" => eval(&flags),
        "simulate" => simulate_cmd(&flags),
        other => Err(format!("unknown command: {other}")),
    }
}

fn generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = parse_kind(req(flags, "kind")?)?;
    let n: usize = req(flags, "n")?.parse().map_err(|_| "bad -n".to_string())?;
    let rule = parse_rule(flags.get("rule").map(|s| s.as_str()).unwrap_or("0.1w"))?;
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(42), |s| s.parse().map_err(|_| "bad --seed"))?;
    let (wf, labels) = kind.generate_labeled(n, rule, seed);
    let spec = WorkflowSpec::from_workflow(&wf, Some(&labels));
    let json = spec.to_json();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "wrote {kind} workflow: {n} tasks, {} edges, Tinf = {:.1} s -> {path}",
                wf.dag().n_edges(),
                wf.total_work()
            );
        }
        None => println!("{json}"),
    }
    if let Some(path) = flags.get("dot") {
        let dot = to_dot(
            wf.dag(),
            |v| format!("{}\\n#{v}", labels[v.index()]),
            &DotOptions::default(),
        );
        std::fs::write(path, dot).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote Graphviz -> {path}");
    }
    Ok(())
}

fn workflow_from_flags(flags: &HashMap<String, String>) -> Result<Workflow, String> {
    if let Some(path) = flags.get("workflow") {
        load_workflow(path)
    } else {
        let kind = parse_kind(req(flags, "kind")?)?;
        let n: usize = req(flags, "n")?.parse().map_err(|_| "bad -n".to_string())?;
        let rule = parse_rule(flags.get("rule").map(|s| s.as_str()).unwrap_or("0.1w"))?;
        let seed: u64 = flags
            .get("seed")
            .map_or(Ok(42), |s| s.parse().map_err(|_| "bad --seed"))?;
        Ok(kind.generate(n, rule, seed))
    }
}

fn model_from_flags(flags: &HashMap<String, String>) -> Result<FaultModel, String> {
    let lambda = parse_f64(req(flags, "lambda")?, "lambda")?;
    let d = flags
        .get("downtime")
        .map_or(Ok(0.0), |s| parse_f64(s, "downtime"))?;
    Ok(FaultModel::new(lambda, d))
}

fn solve(flags: &HashMap<String, String>) -> Result<(), String> {
    let wf = workflow_from_flags(flags)?;
    let model = model_from_flags(flags)?;
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(42), |s| s.parse().map_err(|_| "bad --seed"))?;
    let which = flags.get("heuristic").map(|s| s.as_str()).unwrap_or("all");
    let mut results = if which == "all" {
        run_all(&wf, model, SweepPolicy::Exhaustive, seed)
    } else {
        vec![run_heuristic(
            &wf,
            model,
            parse_heuristic(which)?,
            SweepPolicy::Exhaustive,
        )]
    };
    results.sort_by(|a, b| a.expected_makespan.total_cmp(&b.expected_makespan));
    println!(
        "{:<12} {:>14} {:>9} {:>7}",
        "heuristic", "E[makespan] s", "T/Tinf", "#ckpt"
    );
    for r in &results {
        println!(
            "{:<12} {:>14.2} {:>9.4} {:>7}",
            r.name,
            r.expected_makespan,
            r.ratio,
            r.schedule.n_checkpoints()
        );
    }
    if let Some(path) = flags.get("out") {
        let best = &results[0];
        let json = serde_json::to_string_pretty(&best.schedule)
            .map_err(|e| format!("serializing schedule: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote best schedule ({}) -> {path}", best.name);
    }
    Ok(())
}

fn eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let wf = load_workflow(req(flags, "workflow")?)?;
    let schedule = load_schedule(req(flags, "schedule")?, &wf)?;
    let model = model_from_flags(flags)?;
    let report = evaluate(&wf, model, &schedule);
    println!("E[makespan] = {:.4} s", report.expected_makespan);
    println!("Tinf        = {:.4} s", wf.total_work());
    println!(
        "T/Tinf      = {:.6}",
        report.expected_makespan / wf.total_work()
    );
    println!("checkpoints = {}", schedule.n_checkpoints());
    // Top contributors.
    let mut by_cost: Vec<(usize, f64)> = report.per_position.iter().cloned().enumerate().collect();
    by_cost.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("heaviest positions (task: E[X]):");
    for (pos, e) in by_cost.into_iter().take(5) {
        println!(
            "  T{} @ position {}: {:.3} s",
            schedule.order()[pos],
            pos + 1,
            e
        );
    }
    Ok(())
}

fn simulate_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    let wf = load_workflow(req(flags, "workflow")?)?;
    let schedule = load_schedule(req(flags, "schedule")?, &wf)?;
    let model = model_from_flags(flags)?;
    let trials: usize = flags
        .get("trials")
        .map_or(Ok(10_000), |s| s.parse().map_err(|_| "bad --trials"))?;
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(42), |s| s.parse().map_err(|_| "bad --seed"))?;
    let spec = TrialSpec::new(trials, seed);
    let stats = match flags.get("weibull-shape") {
        None => run_trials(&wf, &schedule, model, spec),
        Some(sh) => {
            let shape = parse_f64(sh, "weibull shape")?;
            let mtbf = model.mtbf();
            run_trials_with(&wf, &schedule, model.downtime(), spec, move |s| {
                WeibullInjector::with_mtbf(mtbf, shape, s)
            })
        }
    };
    println!("trials      = {}", stats.makespan.n());
    println!(
        "makespan    = {:.3} ± {:.3} s (95% CI), stddev {:.3}",
        stats.makespan.mean(),
        stats.makespan.ci95(),
        stats.makespan.stddev()
    );
    println!(
        "range       = [{:.3}, {:.3}] s",
        stats.makespan.min(),
        stats.makespan.max()
    );
    println!("mean faults = {:.3}", stats.faults.mean());
    let labels = [
        "work",
        "rework",
        "recovery",
        "checkpoint",
        "wasted",
        "downtime",
    ];
    println!("mean time breakdown:");
    for (l, v) in labels.iter().zip(stats.mean_breakdown) {
        println!("  {l:<11} {v:>12.3} s");
    }
    let analytic = expected_makespan(&wf, model, &schedule);
    let z = (stats.makespan.mean() - analytic) / stats.makespan.sem();
    println!("analytic    = {analytic:.3} s (z = {z:.2})");
    Ok(())
}
