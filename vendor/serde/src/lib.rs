//! Offline stand-in for [`serde`](https://serde.rs), built around an owned
//! value tree ([`Value`]) instead of the real crate's visitor machinery.
//!
//! * [`Serialize`] converts a value into a [`Value`];
//! * [`Deserialize`] rebuilds a value from a [`Value`];
//! * the derive macros (re-exported from `serde_derive`) generate both for
//!   plain structs, newtypes, and enums with unit or struct variants, using
//!   serde's standard externally-tagged representation;
//! * `#[serde(default)]` on a field falls back to `Default::default()` when
//!   the field is missing.
//!
//! `serde_json` (the sibling stand-in) renders [`Value`] to JSON text and
//! parses it back, so everything downstream sees the familiar
//! `to_string`/`from_str` API.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model: what survives serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact up to `u64::MAX`).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Looks up `name` in map entries (first match wins, like serde).
pub fn map_get<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y, found Z".
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        DeError(format!(
            "expected {what} while deserializing {ty}, found {}",
            found.kind()
        ))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{tag}` for enum {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitives ----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let out = match v {
                    Value::UInt(u) => <$t>::try_from(*u).ok(),
                    Value::Int(i) => u64::try_from(*i).ok().and_then(|u| <$t>::try_from(u).ok()),
                    Value::Float(f)
                        if f.fract() == 0.0 && *f >= 0.0 && *f <= (1u64 << 53) as f64 =>
                    {
                        <$t>::try_from(*f as u64).ok()
                    }
                    _ => None,
                };
                out.ok_or_else(|| DeError::expected("unsigned integer", stringify!($t), v))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let out = match v {
                    Value::UInt(u) => i64::try_from(*u).ok().and_then(|i| <$t>::try_from(i).ok()),
                    Value::Int(i) => <$t>::try_from(*i).ok(),
                    Value::Float(f)
                        if f.fract() == 0.0 && f.abs() <= (1u64 << 53) as f64 =>
                    {
                        <$t>::try_from(*f as i64).ok()
                    }
                    _ => None,
                };
                out.ok_or_else(|| DeError::expected("integer", stringify!($t), v))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::expected("number", "f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("non-empty")),
            other => Err(DeError::expected("single-char string", "char", other)),
        }
    }
}

// ---- containers ----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                let s = v.as_seq().ok_or_else(|| DeError::expected("sequence", "tuple", v))?;
                if s.len() != LEN {
                    return Err(DeError(format!(
                        "expected a sequence of length {LEN}, found {}", s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn u64_survives_above_f64_precision() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(Vec::<(u32, u32)>::from_value(&v.to_value()).unwrap(), v);
        let t = (1.0f64, 2.0f64, 3.0f64);
        assert_eq!(<(f64, f64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn numeric_cross_decoding() {
        // Whole floats decode into integers (external JSON writers emit "1.0").
        assert_eq!(u32::from_value(&Value::Float(7.0)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::UInt(7)).unwrap(), 7.0);
        assert!(u32::from_value(&Value::Float(7.5)).is_err());
    }
}
