//! Offline stand-in for [`rand` 0.8](https://docs.rs/rand/0.8), providing the
//! subset of the API this workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` / `gen_bool` / `gen`.
//!
//! The generator is xoshiro256++ (the algorithm family behind the real
//! `SmallRng` on 64-bit targets), seeded through SplitMix64 exactly as
//! `rand_core` does. Streams do **not** bit-match the real crate — nothing in
//! this workspace depends on the upstream streams, only on determinism and
//! statistical quality.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `state` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values samplable uniformly from the generator's raw output
/// (the stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable into a `T` (the stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // `start + u·span` can round up to `end` when `start` is large
        // relative to the span; keep the documented [start, end) contract.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

/// Uniform `u64` in `[0, span)` by rejection from the top of the word,
/// avoiding modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // Full-width span (span == 2^64 wraps to 0): any word works.
                let off = if span == 0 { rng.next_u64() } else { uniform_below(rng, span) };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// A value from the standard distribution (`f64` is uniform `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut st = state;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut n = [s0, s1, s2, s3];
            n[2] ^= n[0];
            n[3] ^= n[1];
            n[1] ^= n[2];
            n[0] ^= n[3];
            n[2] ^= t;
            n[3] = n[3].rotate_left(45);
            self.s = n;
            result
        }
    }

    /// Alias kept for API compatibility (`StdRng` is not otherwise used).
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_in_bounds_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..15);
            assert!((10..15).contains(&v));
            counts[v - 10] += 1;
        }
        for &c in &counts {
            assert!((1_600..2_400).contains(&c), "uniformity off: {counts:?}");
        }
        let f = r.gen_range(2.0f64..3.0);
        assert!((2.0..3.0).contains(&f));
        let g = r.gen_range(1usize..=3);
        assert!((1..=3).contains(&g));
    }

    #[test]
    fn float_range_never_returns_upper_bound() {
        // start large relative to the span: start + u*span rounds to end
        // for u near 1 unless clamped.
        let mut r = SmallRng::seed_from_u64(13);
        for _ in 0..100_000 {
            let v = r.gen_range(1e9f64..(1e9 + 1.0));
            assert!(v < 1e9 + 1.0, "sampled the excluded upper bound: {v}");
            assert!(v >= 1e9);
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!(
            (2_200..2_800).contains(&hits),
            "p=0.25 produced {hits}/10000"
        );
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
