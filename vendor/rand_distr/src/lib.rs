//! Offline stand-in for [`rand_distr` 0.4](https://docs.rs/rand_distr/0.4),
//! providing the [`Distribution`] trait plus the [`Weibull`] and [`Gamma`]
//! samplers this workspace uses.
//!
//! Weibull sampling is exact inverse-CDF; Gamma uses Marsaglia–Tsang
//! squeeze sampling (with the Ahrens–Dieter boost for `shape < 1`), the same
//! family of algorithms as the real crate.

use rand::{RngCore, Standard};

/// Types that can sample values of `T` from a random source.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter-validation error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Weibull distribution with `scale` λ and `shape` k.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull<F = f64> {
    scale: F,
    inv_shape: F,
}

impl Weibull<f64> {
    /// Creates the distribution; both parameters must be finite and > 0.
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(Error("Weibull scale must be finite and > 0"));
        }
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(Error("Weibull shape must be finite and > 0"));
        }
        Ok(Weibull {
            scale,
            inv_shape: 1.0 / shape,
        })
    }
}

impl Distribution<f64> for Weibull<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: λ · (−ln(1−u))^{1/k}, u ∈ [0, 1).
        let u: f64 = rand::Standard::sample_standard(rng);
        self.scale * (-(1.0 - u).ln()).powf(self.inv_shape)
    }
}

/// Gamma distribution with `shape` k and `scale` θ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma<F = f64> {
    shape: F,
    scale: F,
}

impl Gamma<f64> {
    /// Creates the distribution; both parameters must be finite and > 0.
    pub fn new(shape: f64, scale: f64) -> Result<Self, Error> {
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(Error("Gamma shape must be finite and > 0"));
        }
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(Error("Gamma scale must be finite and > 0"));
        }
        Ok(Gamma { shape, scale })
    }
}

/// One standard-normal draw (polar Box–Muller, first coordinate).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * f64::sample_standard(rng) - 1.0;
        let v = 2.0 * f64::sample_standard(rng) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

impl Distribution<f64> for Gamma<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // Ahrens–Dieter boost: Γ(k) = Γ(k+1) · U^{1/k}.
            let boosted = Gamma {
                shape: self.shape + 1.0,
                scale: self.scale,
            };
            let u: f64 = rand::Standard::sample_standard(rng);
            // u == 0 would yield 0, which is a valid (measure-zero) draw.
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        // Marsaglia–Tsang (2000).
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let t = 1.0 + c * x;
            if t <= 0.0 {
                continue;
            }
            let v = t * t * t;
            let u: f64 = rand::Standard::sample_standard(rng);
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 {
                return d * v * self.scale;
            }
            if u > 0.0 && u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v * self.scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mean_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn weibull_mean_matches_analytic() {
        // k = 2 (Rayleigh): mean = λ·Γ(1.5) = λ·√π/2.
        let d = Weibull::new(10.0, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let m = mean_of(200_000, || d.sample(&mut rng));
        let expect = 10.0 * (std::f64::consts::PI).sqrt() / 2.0;
        assert!((m - expect).abs() < 0.05 * expect, "{m} vs {expect}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Weibull::new(4.0, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let m = mean_of(200_000, || d.sample(&mut rng));
        assert!((m - 4.0).abs() < 0.1, "{m}");
    }

    #[test]
    fn gamma_mean_and_variance_match_analytic() {
        for (shape, scale) in [(0.5, 3.0), (2.5, 1.5), (9.0, 0.25)] {
            let d = Gamma::new(shape, scale).unwrap();
            let mut rng = SmallRng::seed_from_u64(7);
            let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            let (em, ev) = (shape * scale, shape * scale * scale);
            assert!(
                (mean - em).abs() < 0.05 * em,
                "shape {shape}: mean {mean} vs {em}"
            );
            assert!(
                (var - ev).abs() < 0.1 * ev,
                "shape {shape}: var {var} vs {ev}"
            );
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, f64::NAN).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
    }
}
