//! Offline stand-in for [`criterion`](https://docs.rs/criterion), providing
//! the subset of the API this workspace's benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `bench_with_input`
//! / `finish`, `BenchmarkId::from_parameter`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then timed samples
//! under a fixed wall-clock budget, reporting mean / min / max per
//! benchmark. No statistics files, no HTML reports, no CLI parsing — but
//! relative comparisons (e.g. sequential vs parallel Monte-Carlo trials)
//! are directly readable from the printed table.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget spent measuring each benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Wall-clock budget spent warming up each benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(80);

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendering just the parameter (`group/param`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter (`group/name/param`).
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Runs closures and accumulates timing samples.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine` until the sample budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: establishes caches and an iteration-time estimate.
        let warm_start = Instant::now();
        let mut one = Duration::ZERO;
        let mut warm_iters = 0u32;
        while warm_start.elapsed() < WARMUP_BUDGET && warm_iters < 1_000 {
            let t = Instant::now();
            std::hint::black_box(routine());
            one = t.elapsed();
            warm_iters += 1;
        }
        // Measurement: one sample per call, until the budget runs out.
        let start = Instant::now();
        loop {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if start.elapsed() + one > self.budget {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let n = self.samples.len() as u32;
        let total: Duration = self.samples.iter().sum();
        let mean = total / n;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{label:<50} time: [{} {} {}]  ({n} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stand-in sizes samples by a
    /// wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: MEASURE_BUDGET,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) -> &mut Self {
        let id = id.to_string();
        self.run(&id, f);
        self
    }

    /// Benchmarks a closure that receives `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = id.id.clone();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Ends the group (printing happened eagerly).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: MEASURE_BUDGET,
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Prevents the optimizer from discarding a value (re-export of the std
/// implementation, which the real criterion also uses on recent toolchains).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: Duration::from_millis(5),
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(!b.samples.is_empty());
        b.report("test/add");
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| ()));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).contains(" s"));
    }
}
