//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json), rendering
//! the sibling `serde` stand-in's [`Value`] tree to JSON text and parsing it
//! back.
//!
//! Numbers round-trip exactly: floats are written with Rust's shortest
//! round-trip formatting (`{:?}`), and integers (including full-range `u64`,
//! e.g. bitset words) are kept out of floating point entirely.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error produced by serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

// ---- writing -------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest representation that parses back to the
        // same f64; it always contains '.' or 'e', which JSON accepts.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no Inf/NaN; serde_json emits null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            let inner = indent.map(|i| i + 1);
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, inner);
                write_value(out, item, inner);
            }
            newline_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            let inner = indent.map(|i| i + 1);
            for (k, (key, val)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, inner);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, inner);
            }
            newline_indent(out, indent);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(levels) = indent {
        out.push('\n');
        for _ in 0..levels {
            out.push_str("  ");
        }
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    to_string_into(value, &mut out)?;
    Ok(out)
}

/// Serializes `value` to compact JSON into a caller-owned buffer,
/// clearing it first. Byte-identical to [`to_string`]; reusing `out`
/// across calls amortizes the allocation away.
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), Error> {
    out.clear();
    write_value(out, &value.to_value(), None);
    Ok(())
}

/// Serializes `value` to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

// ---- parsing -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {what}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > 128 {
            return Err(self.error("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "`:`")?;
                    let val = self.parse_value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "`\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                self.eat_keyword("\\u")
                                    .map_err(|_| self.error("missing low surrogate"))?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("expected a value"));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_via_text() {
        for v in [0.1f64, 1.0, -2.5e-9, 1e300, 123456.789] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {s}");
        }
        let words: Vec<u64> = vec![u64::MAX, 0, 1 << 63];
        let s = to_string(&words).unwrap();
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, words);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1F600}end".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let surrogate: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(surrogate, "\u{1F600}");
    }

    #[test]
    fn pretty_output_is_reparseable_and_indented() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u32, u32)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.0 garbage").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn whole_floats_parse_into_integers_and_back() {
        let n: u32 = from_str("7").unwrap();
        assert_eq!(n, 7);
        let f: f64 = from_str("7").unwrap();
        assert_eq!(f, 7.0);
        let g: f64 = from_str("7.0").unwrap();
        assert_eq!(g, 7.0);
    }
}
