//! Offline stand-in for [`proptest`](https://docs.rs/proptest), supporting
//! the subset of the API this workspace uses:
//!
//! * the [`proptest!`] macro with `name in strategy` arguments and an
//!   optional `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * range strategies (`0u64..400`, `0.0f64..1.0`, inclusive ranges);
//! * [`collection::vec`] and [`collection::btree_set`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from the real crate: no shrinking (the failing case's test
//! name and case index are reported instead), and the default case count is
//! 64 (override per-block with `with_cases` or globally with the
//! `PROPTEST_CASES` environment variable).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source, delegating to the sibling `rand`
/// stand-in's `SmallRng` so there is a single PRNG implementation in tree.
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Seeds from a test's fully qualified name (FNV-1a hash), so every
    /// test gets a distinct but reproducible stream.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(h),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Uniform in `[0, span)` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.rng.gen_range(0..span)
    }
}

/// Per-block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Applies the `PROPTEST_CASES` environment override, if set.
pub fn resolve_cases(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(configured)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Rounding can push `start + u·span` up to `end`; stay half-open.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with up to `size.end - 1` draws.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of values from `elem`; draws a length in `size`, so the
    /// set may be smaller when draws collide (as in the real crate's
    /// minimum-size-0 usage).
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let draws = self.size.clone().sample(rng);
            (0..draws).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// `assert!` within a property (no shrinking; panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __cases = $crate::resolve_cases(__cfg.cases);
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let ::std::result::Result::Err(__panic) = __result {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (re-run is \
                             deterministic; cases are generated in order)",
                            concat!(module_path!(), "::", stringify!($name)),
                            __case,
                            __cases,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// The `proptest!` block macro: defines one `#[test]` per contained `fn`,
/// each running its body over random samples of the argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// The crate's usual glob import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod self_tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.5f64..2.5, z in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        fn collections_respect_sizes(
            v in collection::vec(0u32..100, 2..7),
            s in collection::btree_set(0usize..50, 0..10),
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(s.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 100));
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = super::TestRng::deterministic("x::y");
        let mut b = super::TestRng::deterministic("x::y");
        let mut c = super::TestRng::deterministic("x::z");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
