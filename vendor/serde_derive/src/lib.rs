//! Offline stand-in for `serde_derive`, written against the bare
//! `proc_macro` API (no `syn`/`quote` available offline).
//!
//! Supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields (honouring `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]` per field, separately or
//!   combined as `#[serde(default, skip_serializing_if = "path")]`);
//! * tuple structs (one field → serde's newtype representation, more →
//!   a sequence);
//! * enums whose variants are unit or struct-like, in serde's default
//!   externally-tagged representation (`"Variant"` /
//!   `{"Variant": {fields}}`).
//!
//! Unsupported shapes (generics, tuple variants) produce a
//! `compile_error!` naming the limitation rather than silently
//! misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: name, whether `#[serde(default)]` was present, and the
/// predicate path of `#[serde(skip_serializing_if = "...")]` if any.
struct Field {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

/// A parsed enum variant.
enum Variant {
    Unit(String),
    Struct(String, Vec<Field>),
}

/// A parsed derive target.
enum Item {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, usize),
    Enum(String, Vec<Variant>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Skips one attribute (`#` was just consumed); returns its body text.
fn attr_body(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> String {
    // Inner attributes (`#!`) do not occur on items handed to a derive.
    match tokens.peek() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
            let body = g.stream().to_string();
            tokens.next();
            body
        }
        _ => String::new(),
    }
}

/// Parsed content of one `#[serde(...)]` field attribute.
#[derive(Default)]
struct SerdeFieldAttr {
    default: bool,
    skip_if: Option<String>,
}

/// Parses a `serde(...)` attribute body into its supported field options,
/// or `Err` for anything the stand-in does not implement. Non-serde
/// attribute bodies return an empty option set.
fn parse_serde_field_attr(body: &str) -> Result<SerdeFieldAttr, String> {
    let compact: String = body.chars().filter(|c| !c.is_whitespace()).collect();
    let mut out = SerdeFieldAttr::default();
    let Some(inner) = compact
        .strip_prefix("serde(")
        .and_then(|s| s.strip_suffix(')'))
    else {
        if compact.starts_with("serde") {
            return Err(format!("unsupported serde attribute: #[{body}]"));
        }
        return Ok(out);
    };
    for part in inner.split(',') {
        if part == "default" {
            out.default = true;
        } else if let Some(path) = part.strip_prefix("skip_serializing_if=") {
            let path = path.trim_matches('"');
            if path.is_empty() {
                return Err(format!("empty skip_serializing_if path in #[{body}]"));
            }
            out.skip_if = Some(path.to_string());
        } else {
            return Err(format!("unsupported serde attribute: #[{body}]"));
        }
    }
    Ok(out)
}

/// Parses the fields of a named-field brace group.
fn parse_named_fields(group: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        let mut default = false;
        let mut skip_if = None;
        // Attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let body = attr_body(&mut tokens);
                    let attr = parse_serde_field_attr(&body)?;
                    default |= attr.default;
                    if attr.skip_if.is_some() {
                        skip_if = attr.skip_if;
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // Skip optional `pub(...)` restriction.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token in fields: {other}")),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                _ => {}
            }
            tokens.next();
        }
        fields.push(Field {
            name,
            default,
            skip_if,
        });
    }
}

/// Counts top-level fields of a tuple-struct paren group.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    for t in group {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        fields + 1
    } else {
        0
    }
}

/// Parses the variants of an enum brace group.
fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        // Attributes before the variant name.
        let name = loop {
            match tokens.next() {
                None => return Ok(variants),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let body = attr_body(&mut tokens);
                    if body.trim_start().starts_with("serde") {
                        return Err(format!("unsupported serde attribute: #[{body}]"));
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                Some(other) => return Err(format!("unexpected token in enum body: {other}")),
            }
        };
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                variants.push(Variant::Struct(name, fields));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple variant `{name}` is not supported by the offline serde_derive"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: consume the expression up to `,`.
                tokens.next();
                while let Some(t) = tokens.peek() {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    tokens.next();
                }
                variants.push(Variant::Unit(name));
            }
            _ => variants.push(Variant::Unit(name)),
        }
    }
}

/// Parses a derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    let kind = loop {
        match tokens.next() {
            None => return Err("empty derive input".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                attr_body(&mut tokens);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => return Err(format!("unexpected token before item: {other}")),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the offline serde_derive"
            ));
        }
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Item::NamedStruct(name, parse_named_fields(g.stream())?))
            } else {
                Ok(Item::Enum(name, parse_variants(g.stream())?))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind == "struct" {
                Ok(Item::TupleStruct(name, count_tuple_fields(g.stream())))
            } else {
                Err("unexpected parentheses after enum name".into())
            }
        }
        other => Err(format!("expected item body, found {other:?}")),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let mut pushes = String::new();
            for f in fields {
                let push = format!(
                    "entries.push((::std::string::String::from(\"{n}\"), \
                     ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                );
                match &f.skip_if {
                    Some(path) => pushes
                        .push_str(&format!("if !{path}(&self.{n}) {{\n{push}}}\n", n = f.name)),
                    None => pushes.push_str(&push),
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(entries)\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct(name, 1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
             }}\n"
        ),
        Item::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Seq(::std::vec![{}])\n\
                 }}\n}}\n",
                elems.join(", ")
            )
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Variant::Struct(vn, fields) => {
                        let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            let push = format!(
                                "inner.push((::std::string::String::from(\"{n}\"), \
                                 ::serde::Serialize::to_value({n})));\n",
                                n = f.name
                            );
                            match &f.skip_if {
                                Some(path) => pushes.push_str(&format!(
                                    "if !{path}({n}) {{\n{push}}}\n",
                                    n = f.name
                                )),
                                None => pushes.push_str(&push),
                            }
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{\n\
                             let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(inner))])\n\
                             }},\n",
                            pat = pat.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    }
}

/// Generates the named-field construction `Name { f: ..., ... }` body used by
/// both struct and struct-variant deserialization.
fn gen_named_ctor(path: &str, ty_label: &str, fields: &[Field], map_expr: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let fallback = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{n}\", \
                 \"{ty_label}\"))",
                n = f.name
            )
        };
        inits.push_str(&format!(
            "{n}: match ::serde::map_get({map_expr}, \"{n}\") {{\n\
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::std::option::Option::None => {fallback},\n\
             }},\n",
            n = f.name
        ));
    }
    format!("{path} {{\n{inits}}}")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let ctor = gen_named_ctor(name, name, fields, "entries");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let entries = v.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"map\", \"{name}\", v))?;\n\
                 ::std::result::Result::Ok({ctor})\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct(name, 1) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
             }}\n}}\n"
        ),
        Item::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let s = v.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"sequence\", \"{name}\", v))?;\n\
                 if s.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError::expected(\
                 \"sequence of length {n}\", \"{name}\", v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({elems}))\n\
                 }}\n}}\n",
                elems = elems.join(", ")
            )
        }
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut struct_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Variant::Struct(vn, fields) => {
                        let ctor =
                            gen_named_ctor(&format!("{name}::{vn}"), name, fields, "inner");
                        struct_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let inner = payload.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"map\", \"{name}::{vn}\", payload))?;\n\
                             ::std::result::Result::Ok({ctor})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                 }},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, payload) = &m[0];\n\
                 match tag.as_str() {{\n\
                 {struct_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"variant tag\", \"{name}\", other)),\n\
                 }}\n\
                 }}\n}}\n"
            )
        }
    }
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(e) => compile_error(&e),
    }
}
