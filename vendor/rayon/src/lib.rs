//! Offline stand-in for [`rayon`](https://docs.rs/rayon), implementing the
//! subset of the parallel-iterator API this workspace uses
//! (`into_par_iter` / `par_iter` → `map` / `map_init` → `collect` / `fold` /
//! `fold_chunks` / `reduce`) on top of `std::thread::scope`.
//!
//! # Chunked execution model
//!
//! Work is dispatched in contiguous index **chunks**: a single atomic
//! cursor hands each worker the next unclaimed chunk, the worker drains the
//! chunk's items through the pipeline, and writes the chunk's result into a
//! pre-allocated per-chunk output slot. Synchronization cost is therefore
//! two uncontended lock acquisitions per *chunk* (claim the input, store
//! the output) — never per item. Range sources (`0..n`) stay lazy: a chunk
//! is just a sub-range, so no index vector is ever materialized.
//!
//! Two chunk granularities coexist, on purpose:
//!
//! * **dispatch chunks** (`collect`) may depend on the thread count — the
//!   sink reassembles results from chunk indices, so any granularity
//!   yields input order;
//! * **fold chunks** (`fold` / `fold_chunks` / `map_init`) are a pure
//!   function of the item count ([`fold_chunk_len`]) — group boundaries
//!   never move with `RAYON_NUM_THREADS`, so `fold(..).reduce(..)` chains
//!   are **bit-identical for any thread count**, the property the
//!   Monte-Carlo validation tests rely on.
//!
//! The pool size honors `RAYON_NUM_THREADS` (positive integers, clamped;
//! invalid or zero values are ignored, like real rayon), falling back to
//! the machine's available parallelism.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hard cap on spawned workers; `RAYON_NUM_THREADS` is clamped to this.
const MAX_THREADS: usize = 256;

/// Dispatch chunks handed to each worker (load balancing headroom).
const CHUNKS_PER_THREAD: usize = 4;

/// Fan-out of the deterministic fold grouping (see [`fold_chunk_len`]).
const FOLD_GROUPS: usize = 64;

/// Pool size: `RAYON_NUM_THREADS` when set to a valid positive integer
/// (clamped to [`MAX_THREADS`]), otherwise the machine's parallelism.
fn configured_threads() -> usize {
    if let Some(v) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        if v >= 1 {
            return v.min(MAX_THREADS);
        }
    }
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// Number of worker threads used for a batch of `n` items.
fn thread_count(n: usize) -> usize {
    configured_threads().min(n).max(1)
}

/// Number of threads the pool would use for an unbounded batch.
pub fn current_num_threads() -> usize {
    configured_threads()
}

/// Chunk length of the deterministic fold grouping for `n` items: at most
/// [`FOLD_GROUPS`] groups, boundaries a pure function of the item count
/// (never the thread count). Exposed so sequential twins of a parallel
/// `fold(..).reduce(..)` can replicate the exact grouping.
pub fn fold_chunk_len(n: usize) -> usize {
    n.div_ceil(FOLD_GROUPS).max(1)
}

/// Dispatch chunk length for order-preserving sinks: a few chunks per
/// worker. Order is restored from chunk indices, so this may (and does)
/// depend on the thread count.
fn dispatch_chunk_len(n: usize, threads: usize) -> usize {
    n.div_ceil((threads * CHUNKS_PER_THREAD).max(1)).max(1)
}

/// A finite source of items splittable into contiguous index chunks, each
/// yielded through an owning iterator. `split` runs once, on the
/// dispatching thread; concatenating the chunks restores input order.
/// Range sources return sub-ranges, so they dispatch lazily.
pub trait ParallelSource: Send + Sized {
    /// Item type produced.
    type Item: Send;
    /// Owning per-chunk iterator.
    type Chunk: Iterator<Item = Self::Item> + Send;
    /// Number of items.
    fn len(&self) -> usize;
    /// `true` when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Splits into consecutive chunks of `chunk_len` items (the last may
    /// be shorter).
    fn split(self, chunk_len: usize) -> Vec<Self::Chunk>;
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl ParallelSource for Range<$t> {
            type Item = $t;
            type Chunk = Range<$t>;
            fn len(&self) -> usize {
                if self.end <= self.start {
                    0
                } else {
                    usize::try_from(self.end - self.start).unwrap_or(usize::MAX)
                }
            }
            fn split(self, chunk_len: usize) -> Vec<Range<$t>> {
                let chunk_len = chunk_len.max(1);
                let mut chunks = Vec::new();
                let mut lo = self.start;
                while lo < self.end {
                    // Saturate to the range end on width/overflow issues.
                    let hi = <$t>::try_from(chunk_len)
                        .ok()
                        .and_then(|c| lo.checked_add(c))
                        .map_or(self.end, |h| h.min(self.end));
                    chunks.push(lo..hi);
                    lo = hi;
                }
                chunks
            }
        }
    )*};
}

impl_range_source!(usize, u64, u32);

impl<T: Send> ParallelSource for Vec<T> {
    type Item = T;
    type Chunk = std::vec::IntoIter<T>;
    fn len(&self) -> usize {
        self.len()
    }
    fn split(self, chunk_len: usize) -> Vec<Self::Chunk> {
        let chunk_len = chunk_len.max(1);
        let mut chunks = Vec::with_capacity(self.len().div_ceil(chunk_len));
        let mut it = self.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                return chunks;
            }
            chunks.push(chunk.into_iter());
        }
    }
}

impl<'a, T: Sync> ParallelSource for &'a [T] {
    type Item = &'a T;
    type Chunk = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        (**self).len()
    }
    fn split(self, chunk_len: usize) -> Vec<Self::Chunk> {
        self.chunks(chunk_len.max(1)).map(|c| c.iter()).collect()
    }
}

/// Chunk-level engine: workers claim chunk indices from a single atomic
/// cursor and write each processed chunk into its pre-allocated output
/// slot, in any order; the returned vector is in chunk (= input) order.
fn run_chunks<C, A, P>(chunks: Vec<C>, threads: usize, process: P) -> Vec<A>
where
    C: Send,
    A: Send,
    P: Fn(C) -> A + Sync,
{
    let n_chunks = chunks.len();
    if threads <= 1 || n_chunks <= 1 {
        return chunks.into_iter().map(process).collect();
    }
    let input: Vec<Mutex<Option<C>>> = chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let output: Vec<Mutex<Option<A>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n_chunks) {
            scope.spawn(|| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= n_chunks {
                    break;
                }
                let chunk = input[k]
                    .lock()
                    .expect("no panics while holding chunk lock")
                    .take()
                    .expect("each chunk is claimed exactly once");
                let result = process(chunk);
                *output[k].lock().expect("no panics while holding out lock") = Some(result);
            });
        }
    });
    output
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker did not panic")
                .expect("every chunk slot was filled")
        })
        .collect()
}

/// A chunk-dispatched "parallel iterator" over the items of `S`.
pub struct ParIter<S> {
    source: S,
}

/// `map` adapter: source plus the mapping closure, evaluated at the sink.
pub struct ParMap<S, F> {
    source: S,
    f: F,
}

/// `map_init` adapter: per-chunk state factory plus the mapping closure.
pub struct ParMapInit<S, IF, F> {
    source: S,
    init: IF,
    f: F,
}

/// Sinks that can be built from an ordered vector of results.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results in input order.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self {
        v
    }
}

impl<S: ParallelSource> ParIter<S> {
    /// Maps every item through `f` (evaluated in parallel at the sink).
    pub fn map<R: Send, F: Fn(S::Item) -> R + Sync>(self, f: F) -> ParMap<S, F> {
        ParMap {
            source: self.source,
            f,
        }
    }

    /// Maps every item through `f`, threading a per-chunk state created by
    /// `init` (rayon's `map_init`, e.g. for a scratch RNG or buffer). The
    /// state restarts at [`fold_chunk_len`] boundaries — a pure function
    /// of the item count — so results are deterministic for any thread
    /// count whenever `f` is deterministic in `(state history, item)`.
    pub fn map_init<St, R, IF, F>(self, init: IF, f: F) -> ParMapInit<S, IF, F>
    where
        St: Send,
        R: Send,
        IF: Fn() -> St + Sync,
        F: Fn(&mut St, S::Item) -> R + Sync,
    {
        ParMapInit {
            source: self.source,
            init,
            f,
        }
    }

    /// Folds each deterministic fold-chunk through a per-chunk mutable
    /// state: `init()` creates the state on the worker that claims the
    /// chunk, `step` absorbs every item of the chunk into it, and `finish`
    /// converts the state into the chunk's accumulator. Chunk boundaries
    /// are [`fold_chunk_len`] — a pure function of the item count — so a
    /// downstream chunk-ordered `reduce` is bit-identical for any thread
    /// count, exactly like [`ParMap::fold`]; unlike it, the state lives for
    /// the *whole chunk*, which lets callers hoist scratch buffers out of
    /// the per-item path (the Monte-Carlo fast path allocates per chunk,
    /// never per trial).
    pub fn fold_chunk_states<St, A, IF, SF, FF>(
        self,
        init: IF,
        step: SF,
        finish: FF,
    ) -> ParIter<Vec<A>>
    where
        St: Send,
        A: Send,
        IF: Fn() -> St + Sync,
        SF: Fn(&mut St, S::Item) + Sync,
        FF: Fn(St) -> A + Sync,
    {
        let n = self.source.len();
        let threads = thread_count(n);
        let chunks = self.source.split(fold_chunk_len(n));
        let groups = run_chunks(chunks, threads, |c| {
            let mut state = init();
            for item in c {
                step(&mut state, item);
            }
            finish(state)
        });
        ParIter { source: groups }
    }

    /// Reduces the items sequentially in input order (deterministic).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        ID: Fn() -> S::Item,
        OP: Fn(S::Item, S::Item) -> S::Item,
    {
        let mut acc = identity();
        for chunk in self.source.split(usize::MAX) {
            acc = chunk.fold(acc, &op);
        }
        acc
    }
}

impl<S, R, F> ParMap<S, F>
where
    S: ParallelSource,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    /// Runs the pipeline and collects results in input order: each worker
    /// fills a pre-allocated per-chunk buffer, and the buffers are
    /// concatenated in chunk order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let n = self.source.len();
        let threads = thread_count(n);
        let chunks = self.source.split(dispatch_chunk_len(n, threads));
        let f = &self.f;
        let parts = run_chunks(chunks, threads, |c| c.map(f).collect::<Vec<R>>());
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        C::from_ordered_vec(out)
    }

    /// Folds results into per-chunk accumulators (rayon's `fold`) with the
    /// deterministic [`fold_chunk_len`] grouping; per-item results are
    /// never materialized. Downstream `reduce` merges the `O(chunks)`
    /// accumulators in chunk order, so the full chain is bit-identical for
    /// any thread count.
    pub fn fold<A, ID, FF>(self, identity: ID, fold_op: FF) -> ParIter<Vec<A>>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        FF: Fn(A, R) -> A + Sync,
    {
        let chunk_len = fold_chunk_len(self.source.len());
        self.fold_chunks(chunk_len, identity, fold_op)
    }

    /// [`fold`](Self::fold) with an explicit chunk length. Group
    /// boundaries fall at multiples of `chunk_len` regardless of the
    /// thread count, so the grouping is caller-controlled and
    /// deterministic.
    pub fn fold_chunks<A, ID, FF>(
        self,
        chunk_len: usize,
        identity: ID,
        fold_op: FF,
    ) -> ParIter<Vec<A>>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        FF: Fn(A, R) -> A + Sync,
    {
        let n = self.source.len();
        let threads = thread_count(n);
        let chunks = self.source.split(chunk_len.max(1));
        let f = &self.f;
        let groups = run_chunks(chunks, threads, |c| {
            c.fold(identity(), |acc, item| fold_op(acc, f(item)))
        });
        ParIter { source: groups }
    }
}

impl<S, St, R, IF, F> ParMapInit<S, IF, F>
where
    S: ParallelSource,
    St: Send,
    R: Send,
    IF: Fn() -> St + Sync,
    F: Fn(&mut St, S::Item) -> R + Sync,
{
    /// Runs the pipeline and collects results in input order. One state
    /// per [`fold_chunk_len`] chunk, created by `init` on the worker that
    /// claims the chunk.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let n = self.source.len();
        let threads = thread_count(n);
        let chunks = self.source.split(fold_chunk_len(n));
        let init = &self.init;
        let f = &self.f;
        let parts = run_chunks(chunks, threads, |c| {
            let mut state = init();
            c.map(|item| f(&mut state, item)).collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        C::from_ordered_vec(out)
    }
}

/// Owned conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Source the iterator draws from.
    type Source: ParallelSource;
    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

impl<S: ParallelSource> IntoParallelIterator for S {
    type Source = S;
    fn into_par_iter(self) -> ParIter<S> {
        ParIter { source: self }
    }
}

/// Borrowed conversion (`par_iter`) yielding `&T`.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed source type.
    type Source: ParallelSource + 'a;
    /// Converts `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Source>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Source = &'a [T];
    fn par_iter(&'a self) -> ParIter<&'a [T]> {
        ParIter { source: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Source = &'a [T];
    fn par_iter(&'a self) -> ParIter<&'a [T]> {
        ParIter {
            source: self.as_slice(),
        }
    }
}

/// The crate's usual glob import.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelSource,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Mutex;

    /// Serializes the tests that mutate `RAYON_NUM_THREADS` against the
    /// one that asserts on observed worker counts.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice_matches_sequential() {
        let data: Vec<u64> = (0..257).collect();
        let out: Vec<u64> = data.par_iter().map(|&x| x * x).collect();
        assert_eq!(out, data.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn vec_source_dispatches_all_items_in_order() {
        let data: Vec<String> = (0..300).map(|i| i.to_string()).collect();
        let out: Vec<usize> = data.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(
            out,
            (0..300).map(|i| i.to_string().len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fold_reduce_is_deterministic_and_correct() {
        let total = |n: usize| -> u64 {
            (0..n)
                .into_par_iter()
                .map(|i| i as u64)
                .fold(|| 0u64, |a, b| a + b)
                .reduce(|| 0u64, |a, b| a + b)
        };
        assert_eq!(total(0), 0);
        assert_eq!(total(1), 0);
        assert_eq!(total(1000), 499_500);
        assert_eq!(total(1000), total(1000));
    }

    #[test]
    fn fold_chunks_groups_fall_at_exact_multiples_of_chunk_len() {
        // Each fold group collects its items into one inner vector; the
        // reduce concatenates groups in chunk order, exposing boundaries.
        let groups: Vec<Vec<usize>> = (0..10usize)
            .into_par_iter()
            .map(|i| i * 10)
            .fold_chunks(
                4,
                || vec![Vec::new()],
                |mut acc: Vec<Vec<usize>>, i| {
                    acc.last_mut().expect("identity seeds one group").push(i);
                    acc
                },
            )
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(
            groups,
            vec![vec![0, 10, 20, 30], vec![40, 50, 60, 70], vec![80, 90],]
        );
        // And the default fold grouping is a pure function of n.
        assert_eq!(super::fold_chunk_len(0), 1);
        assert_eq!(super::fold_chunk_len(1), 1);
        assert_eq!(super::fold_chunk_len(64), 1);
        assert_eq!(super::fold_chunk_len(65), 2);
        assert_eq!(super::fold_chunk_len(6_400), 100);
    }

    #[test]
    fn fold_chunk_states_matches_fold_groups_and_reuses_state_per_chunk() {
        // Collect each chunk's items through a stateful buffer; the
        // resulting groups must fall at the same fold_chunk_len boundaries
        // as map(..).fold(..), and every chunk must see a fresh state.
        let n = 1000usize;
        let chunk = super::fold_chunk_len(n);
        let groups: Vec<Vec<usize>> = (0..n)
            .into_par_iter()
            .fold_chunk_states(
                Vec::new,
                |buf: &mut Vec<usize>, i| buf.push(i),
                |buf| vec![buf],
            )
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(groups.len(), n.div_ceil(chunk));
        let mut expect_lo = 0;
        for g in &groups {
            let hi = (expect_lo + chunk).min(n);
            assert_eq!(g, &(expect_lo..hi).collect::<Vec<_>>());
            expect_lo = hi;
        }
        // Empty source: no chunks, the reduce identity survives.
        let empty: Vec<Vec<usize>> = (0..0usize)
            .into_par_iter()
            .fold_chunk_states(
                Vec::new,
                |buf: &mut Vec<usize>, i| buf.push(i),
                |buf| vec![buf],
            )
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert!(empty.is_empty());
    }

    #[test]
    fn map_init_threads_state_per_chunk() {
        // A counter state: each chunk restarts at 0, so the result for
        // item i is its offset within its fold chunk — independent of the
        // thread count by construction.
        let n = 1000usize;
        let chunk = super::fold_chunk_len(n);
        let out: Vec<usize> = (0..n)
            .into_par_iter()
            .map_init(
                || 0usize,
                |count, _i| {
                    let c = *count;
                    *count += 1;
                    c
                },
            )
            .collect();
        let expect: Vec<usize> = (0..n).map(|i| i % chunk).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn rayon_num_threads_env_is_honored_and_invalid_values_ignored() {
        let _guard = ENV_LOCK.lock().unwrap();
        let saved = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::remove_var("RAYON_NUM_THREADS");
        let default = super::current_num_threads();
        assert!(default >= 1);

        std::env::set_var("RAYON_NUM_THREADS", "3");
        assert_eq!(super::current_num_threads(), 3);
        std::env::set_var("RAYON_NUM_THREADS", " 8 ");
        assert_eq!(super::current_num_threads(), 8);
        // Clamped to the hard cap.
        std::env::set_var("RAYON_NUM_THREADS", "999999");
        assert_eq!(super::current_num_threads(), super::MAX_THREADS);
        // Invalid and zero values fall back to the default.
        for bad in ["0", "-4", "lots", ""] {
            std::env::set_var("RAYON_NUM_THREADS", bad);
            assert_eq!(super::current_num_threads(), default, "value {bad:?}");
        }

        // A forced pool still computes the right answer.
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let out: Vec<usize> = (0..101usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (1..102).collect::<Vec<_>>());

        match saved {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
    }

    #[test]
    fn actually_uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        let _guard = ENV_LOCK.lock().unwrap();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let threads = super::current_num_threads();
        let _: Vec<()> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let n = seen.lock().unwrap().len();
        if threads > 1 {
            assert!(n > 1, "expected multiple worker threads, saw {n}");
        }
    }
}
