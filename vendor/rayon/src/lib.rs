//! Offline stand-in for [`rayon`](https://docs.rs/rayon), implementing the
//! subset of the parallel-iterator API this workspace uses
//! (`into_par_iter` / `par_iter` → `map` → `collect` / `fold` / `reduce`)
//! on top of `std::thread::scope`.
//!
//! Work items are distributed over OS threads through a shared atomic
//! cursor; results are written back into their original slot, so `collect`
//! preserves input order and every pipeline is **deterministic regardless
//! of thread count** — the property the Monte-Carlo validation tests rely
//! on. `fold` partitions items into a fixed number of groups (independent
//! of the thread count) so `fold(..).reduce(..)` chains are deterministic
//! too.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for a batch of `n` items.
fn thread_count(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(n)
        .max(1)
}

/// Applies `f` to every item on a scoped thread pool, preserving order.
fn run_parallel<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = thread_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("no panics while holding slot lock")
                    .take()
                    .expect("each slot is taken exactly once");
                let r = f(item);
                *out[i].lock().expect("no panics while holding out lock") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker did not panic")
                .expect("every slot was filled")
        })
        .collect()
}

/// An eagerly materialized "parallel iterator" over `T`.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// `map` adapter: items plus the mapping closure, evaluated at the sink.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Sinks that can be built from an ordered vector of results.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results in input order.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self {
        v
    }
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` (evaluated in parallel at the sink).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Reduces materialized items sequentially (deterministic order).
    pub fn reduce<ID: Fn() -> T, OP: Fn(T, T) -> T>(self, identity: ID, op: OP) -> T {
        self.items.into_iter().fold(identity(), op)
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Runs the pipeline and collects results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered_vec(run_parallel(self.items, self.f))
    }

    /// Folds results into per-group accumulators (rayon's `fold`): the
    /// number of groups is fixed, so downstream `reduce` is deterministic.
    pub fn fold<A, ID, FF>(self, identity: ID, fold_op: FF) -> ParIter<A>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        FF: Fn(A, R) -> A + Sync,
    {
        const GROUPS: usize = 16;
        let results = run_parallel(self.items, self.f);
        let per = results.len().div_ceil(GROUPS).max(1);
        let mut groups: Vec<A> = Vec::new();
        let mut it = results.into_iter().peekable();
        while it.peek().is_some() {
            let mut acc = identity();
            for _ in 0..per {
                match it.next() {
                    Some(r) => acc = fold_op(acc, r),
                    None => break,
                }
            }
            groups.push(acc);
        }
        if groups.is_empty() {
            groups.push(identity());
        }
        ParIter { items: groups }
    }
}

/// Owned conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowed conversion (`par_iter`) yielding `&T`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Converts `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The crate's usual glob import.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of threads a batch of unbounded size would use.
pub fn current_num_threads() -> usize {
    thread_count(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice_matches_sequential() {
        let data: Vec<u64> = (0..257).collect();
        let out: Vec<u64> = data.par_iter().map(|&x| x * x).collect();
        assert_eq!(out, data.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_is_deterministic_and_correct() {
        let total = |n: usize| -> u64 {
            (0..n)
                .into_par_iter()
                .map(|i| i as u64)
                .fold(|| 0u64, |a, b| a + b)
                .reduce(|| 0u64, |a, b| a + b)
        };
        assert_eq!(total(0), 0);
        assert_eq!(total(1), 0);
        assert_eq!(total(1000), 499_500);
        assert_eq!(total(1000), total(1000));
    }

    #[test]
    fn actually_uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let n = seen.lock().unwrap().len();
        if std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            > 1
        {
            assert!(n > 1, "expected multiple worker threads, saw {n}");
        }
    }
}
